"""Incremental connectivity/MST under batched edge-update streams.

The other ``repro.core`` modules answer a query on a *static* input; this
module maintains the answer while the input mutates — the
cluster-computing dynamic-MST setting of Gilbert & Li ("How fast can you
update your MST?", arXiv:2002.06762; PAPERS.md).  The production story is
the live graph service: edges appear and disappear under traffic, and
recomputing the Theorem-2 MST from scratch per change would cost the full
O~(n/k) build every time.  Maintaining the forest instead costs O(1)-ish
rounds per *batch* of updates.

Two layers, matching the repository's simulation contract (DESIGN.md §5):

* :class:`MaintainedForest` computes the *real answer*: an exact
  sequential dynamic minimum-spanning-forest structure over an explicit
  edge set.  Insertions apply the classic cycle rule (the new edge swaps
  against the heaviest edge on the tree path between its endpoints);
  deletions of forest edges trigger a *replacement search* for the
  minimum-weight edge reconnecting the split component.  Both are the
  textbook exchange arguments, so after every update the maintained
  forest is a minimum spanning forest of the current edge set — the
  invariant the differential suite pins against recompute-from-scratch.
* :func:`dynamic_msf_updates` runs the distributed protocol: the initial
  structure is built by the Theorem-2 algorithm (paying its full round
  cost), then each :class:`~repro.scenarios.updates.UpdateBatch` is
  generated from its derived seed, applied to the maintained forest, and
  charged to the cluster's :class:`~repro.cluster.ledger.RoundLedger` as
  one bulk step ``update:batch:<i>`` whose k x k load matrix prices what
  the protocol actually ships: each update record scattered between its
  endpoints' home machines (``edge_bits``), one sketch word per
  repetition from every machine hosting a split component to the
  component's proxy for each replacement search (``sketch_word_bits``),
  and the announcement of every forest change.  Amortized update rounds
  land in the standard envelope (ledger breakdown key ``update``), so
  ``BENCH_dynamic_update_cost`` can gate them against full reruns.

Determinism: batch ``i`` draws every choice from
``batch_seed(plan.base_seed(run_seed), i)``; generation reads only the
maintained state, itself a pure function of (graph, plan, seed).  Two
runs with the same config replay the identical stream — see
DESIGN.md §11 and docs/update-plans.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mst import MSTResult, minimum_spanning_tree_distributed
from repro.runtime.config import SketchConfig, resolve_sketch
from repro.scenarios.updates import UpdateBatch, UpdatePlan, batch_seed

__all__ = [
    "DynamicMSFResult",
    "MaintainedForest",
    "dynamic_msf_updates",
    "generate_batch",
    "inverse_updates",
]


def _canon(u: int, v: int) -> tuple[int, int]:
    """Canonical undirected key (min, max)."""
    return (u, v) if u < v else (v, u)


class MaintainedForest:
    """Exact sequential dynamic minimum-spanning-forest structure.

    Holds the live edge set as a dict ``{(u, v): weight}`` (canonical
    ``u < v`` keys, insertion-ordered, so every scan is deterministic) and
    the current forest as an adjacency map.  All mutation goes through
    :meth:`apply`, which returns a record describing what the update did —
    the runner prices batches from exactly these records.

    Weight ties are broken toward keeping the incumbent forest edge
    (strict inequality in the cycle rule) and by ``(weight, u, v)`` in
    replacement searches, so the structure is deterministic even on
    non-unique weights; on unique weights (the repository's MST testing
    convention) it maintains *the* minimum spanning forest.
    """

    def __init__(self, graph) -> None:
        """Build the structure from a :class:`~repro.graphs.graph.Graph`.

        The initial forest is constructed by Kruskal over the initial
        edges — identical to the certified Theorem-2 output under unique
        weights; the distributed build's rounds are priced by the caller.
        """
        self.n = int(graph.n)
        self.edges: dict[tuple[int, int], float] = {}
        for u, v, w in zip(
            graph.edges_u.tolist(), graph.edges_v.tolist(), graph.weights.tolist()
        ):
            self.edges[(int(u), int(v))] = float(w)
        self._adj: dict[int, dict[int, float]] = {}
        self.tree: dict[tuple[int, int], float] = {}
        for (u, v), w in sorted(self.edges.items(), key=lambda kv: (kv[1], kv[0])):
            if self._find_path(u, v) is None:
                self._link(u, v, w)

    # -- forest primitives -------------------------------------------------

    def _link(self, u: int, v: int, w: float) -> None:
        self.tree[_canon(u, v)] = w
        self._adj.setdefault(u, {})[v] = w
        self._adj.setdefault(v, {})[u] = w

    def _unlink(self, u: int, v: int) -> None:
        del self.tree[_canon(u, v)]
        del self._adj[u][v]
        del self._adj[v][u]

    def _find_path(self, source: int, target: int) -> list[tuple[int, int]] | None:
        """The forest path source -> target as an edge list, or None."""
        if source == target:
            return []
        parent: dict[int, int] = {source: source}
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for x in frontier:
                for y in self._adj.get(x, ()):
                    if y not in parent:
                        parent[y] = x
                        if y == target:
                            path = []
                            node = target
                            while node != source:
                                path.append((parent[node], node))
                                node = parent[node]
                            path.reverse()
                            return path
                        nxt.append(y)
            frontier = nxt
        return None

    def component_of(self, vertex: int) -> set[int]:
        """The vertex set of ``vertex``'s forest component."""
        seen = {vertex}
        frontier = [vertex]
        while frontier:
            nxt = []
            for x in frontier:
                for y in self._adj.get(x, ()):
                    if y not in seen:
                        seen.add(y)
                        nxt.append(y)
            frontier = nxt
        return seen

    # -- queries -----------------------------------------------------------

    @property
    def total_weight(self) -> float:
        """Sum of the maintained forest's edge weights."""
        return float(sum(self.tree.values()))

    @property
    def n_components(self) -> int:
        """Number of connected components (isolated vertices included)."""
        return self.n - len(self.tree)

    def labels(self) -> np.ndarray:
        """Canonical component labels (each component labelled by its min id)."""
        labels = np.arange(self.n, dtype=np.int64)
        # Union-find over the forest edges; path-halving keeps it near-linear.
        parent = np.arange(self.n, dtype=np.int64)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = int(parent[x])
            return x

        for u, v in self.tree:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)
        for x in range(self.n):
            labels[x] = find(x)
        return labels

    def forest_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The forest as sorted ``(edges_u, edges_v, weights)`` arrays."""
        items = sorted(self.tree.items())
        u = np.array([e[0] for e, _ in items], dtype=np.int64)
        v = np.array([e[1] for e, _ in items], dtype=np.int64)
        w = np.array([wt for _, wt in items], dtype=np.float64)
        return u, v, w

    def as_graph(self):
        """The *current* edge set as an immutable Graph (recompute oracle)."""
        from repro.graphs.graph import Graph

        items = sorted(self.edges.items())
        u = np.array([e[0] for e, _ in items], dtype=np.int64)
        v = np.array([e[1] for e, _ in items], dtype=np.int64)
        w = np.array([wt for _, wt in items], dtype=np.float64)
        return Graph.from_edges(self.n, u, v, w)

    # -- updates -----------------------------------------------------------

    def apply(self, op: str, u: int, v: int, w: float | None = None) -> dict:
        """Apply one update; return the effect record the pricing reads.

        ``op`` is ``'insert'`` (requires ``w``) or ``'delete'``.  Inserting
        an existing edge re-weights it (delete + insert); deleting an
        absent edge is a no-op (``applied`` False).  The record carries
        ``op/u/v/weight/applied/tree_changed``, plus ``swapped_out`` for
        cycle-rule swaps and ``search`` (side vertices, the replacement
        found) for forest-edge deletions.
        """
        u, v = int(u), int(v)
        if u == v or not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"invalid edge ({u}, {v}) for n={self.n}")
        key = _canon(u, v)
        if op == "insert":
            if w is None:
                raise ValueError("insert needs a weight")
            return self._insert(key, float(w))
        if op == "delete":
            return self._delete(key)
        raise ValueError(f"op must be 'insert' or 'delete', got {op!r}")

    def _insert(self, key: tuple[int, int], w: float) -> dict:
        rec: dict = {
            "op": "insert",
            "u": key[0],
            "v": key[1],
            "weight": w,
            "applied": True,
            "replaced_weight": self.edges.get(key),
        }
        if key in self.edges:
            # Re-weighting: apply full delete semantics first so the forest
            # invariant never depends on which weight arrived first.
            self._delete(key)
        self.edges[key] = w
        path = self._find_path(key[0], key[1])
        if path is None:
            self._link(key[0], key[1], w)
            rec.update(tree_changed=True, merged=True, swapped_out=None)
            return rec
        heaviest = max(path, key=lambda e: (self.tree[_canon(*e)], _canon(*e)))
        hkey = _canon(*heaviest)
        if self.tree[hkey] > w:
            self._unlink(*hkey)
            self._link(key[0], key[1], w)
            rec.update(tree_changed=True, merged=False, swapped_out=hkey)
        else:
            rec.update(tree_changed=False, merged=False, swapped_out=None)
        return rec

    def _delete(self, key: tuple[int, int]) -> dict:
        rec: dict = {"op": "delete", "u": key[0], "v": key[1]}
        if key not in self.edges:
            rec.update(weight=None, applied=False, tree_changed=False)
            return rec
        w = self.edges.pop(key)
        rec.update(weight=w, applied=True)
        if key not in self.tree:
            rec["tree_changed"] = False
            return rec
        self._unlink(*key)
        # Replacement search: cheapest surviving edge crossing the split.
        side = self.component_of(key[0])
        best: tuple[float, tuple[int, int]] | None = None
        for (eu, ev), ew in self.edges.items():
            if (eu in side) != (ev in side):
                cand = (ew, (eu, ev))
                if best is None or cand < best:
                    best = cand
        if best is not None:
            self._link(best[1][0], best[1][1], best[0])
        rec.update(
            tree_changed=True,
            search={
                "side": side,
                "replacement": None if best is None else best[1],
                "replacement_weight": None if best is None else best[0],
            },
        )
        return rec


def inverse_updates(records: list[dict]) -> list[tuple[str, int, int, float | None]]:
    """The update sequence that undoes ``records`` (applied in order).

    The inverse of an applied insert is a delete; the inverse of an
    applied delete is an insert of the same weight.  No-op records
    (deletes of absent edges) invert to nothing.  Applying a batch and
    then its inverse restores the exact edge set — and therefore, by the
    forest invariant, the recompute answer (the hypothesis property in
    ``tests/scenarios/test_updates.py``).
    """
    out: list[tuple[str, int, int, float | None]] = []
    for rec in reversed(records):
        if not rec.get("applied"):
            continue
        if rec["op"] == "insert":
            out.append(("delete", rec["u"], rec["v"], None))
            if rec.get("replaced_weight") is not None:
                # A re-weighting insert overwrote an existing edge; undoing
                # it must also restore the incumbent weight.
                out.append(("insert", rec["u"], rec["v"], rec["replaced_weight"]))
        else:
            out.append(("insert", rec["u"], rec["v"], rec["weight"]))
    return out


def generate_batch(state: MaintainedForest, spec: UpdateBatch, seed: int) -> list[dict]:
    """Realize one :class:`UpdateBatch` spec against the current state.

    Generates updates one at a time and applies each immediately (the
    generator must see the evolving state — a ``tree_delete`` targets the
    *current* forest, which the previous deletion's replacement may have
    changed).  Deterministic in ``(state, spec, seed)``: all randomness
    comes from a PCG64 stream keyed by ``seed``, and every draw indexes
    insertion-ordered views of the state (see module docstring).  Returns
    the effect records from :meth:`MaintainedForest.apply`, in order —
    the inputs to both batch pricing and :func:`inverse_updates`.
    """
    spec.validate()
    rng = np.random.default_rng(seed & 0xFFFFFFFFFFFFFFFF)
    n = state.n
    wmax = max(state.edges.values(), default=1.0)
    records: list[dict] = []

    def random_insert(pool: list[int] | None = None) -> tuple[str, int, int, float]:
        while True:
            if pool is not None and len(pool) >= 2:
                i, j = rng.choice(len(pool), size=2, replace=False)
                u, v = pool[int(i)], pool[int(j)]
            else:
                u = int(rng.integers(n))
                v = int(rng.integers(n))
            if u != v:
                return ("insert", *_canon(u, v), float(rng.uniform(0.0, wmax)))

    def random_delete(pool: list[tuple[int, int]]) -> tuple[str, int, int, None]:
        key = pool[int(rng.integers(len(pool)))]
        return ("delete", key[0], key[1], None)

    if spec.kind == "tree_delete":
        for _ in range(spec.size):
            tree_edges = list(state.tree)
            if not tree_edges:
                break
            records.append(state.apply(*random_delete(tree_edges)))
        return records

    hub_pool: list[int] | None = None
    if spec.kind == "hot_component":
        hub = int(rng.integers(n))
        hub_pool = sorted(state.component_of(hub))

    for _ in range(spec.size):
        live = list(state.edges)
        if spec.kind == "hot_component":
            pool = hub_pool if hub_pool and len(hub_pool) >= 2 else None
            members = set(hub_pool or ())
            live = [e for e in live if e[0] in members and e[1] in members]
        else:
            pool = None
        if live and rng.random() >= spec.insert_fraction:
            records.append(state.apply(*random_delete(live)))
        else:
            records.append(state.apply(*random_insert(pool)))
    return records


@dataclass
class DynamicMSFResult:
    """Output of a maintained-forest run over an update stream.

    ``initial`` is the distributed Theorem-2 build (its rounds are the
    from-scratch cost every batch amortizes against); the remaining
    fields describe the maintained structure *after* the full stream.
    """

    initial: MSTResult
    labels: np.ndarray
    n_components: int
    total_weight: float
    forest_u: np.ndarray
    forest_v: np.ndarray
    forest_weights: np.ndarray
    final_m: int
    build_rounds: int
    update_rounds: int
    update_bits: int
    updates_applied: int
    batch_stats: list[dict] = field(default_factory=list)

    @property
    def n_edges(self) -> int:
        """Number of maintained forest edges."""
        return int(self.forest_u.size)


def _batch_load(
    k: int,
    home: np.ndarray,
    records: list[dict],
    plan: UpdatePlan,
    repetitions: int,
) -> np.ndarray:
    """The k x k bit-load matrix one applied batch puts on the links.

    Three traffic terms, all real protocol payloads (diagonal entries are
    machine-local and free, per the model):

    * ingest — each update record ships between its endpoints' homes;
    * replacement searches — every machine hosting a vertex of a split
      component contributes one ``sketch_word_bits`` word per repetition
      to the component's proxy (the home of its minimum vertex), which
      announces any replacement edge back to that edge's homes;
    * swaps — a cycle-rule swap announces the evicted edge to its homes.
    """
    load = np.zeros((k, k), dtype=np.int64)
    eb = plan.edge_bits
    for rec in records:
        if not rec.get("applied"):
            continue
        hu, hv = int(home[rec["u"]]), int(home[rec["v"]])
        load[hu, hv] += eb
        swapped = rec.get("swapped_out")
        if swapped is not None:
            load[int(home[swapped[0]]), int(home[swapped[1]])] += eb
        search = rec.get("search")
        if search is not None:
            side = search["side"]
            proxy = int(home[min(side)])
            for machine in np.unique(home[np.fromiter(side, dtype=np.int64)]):
                load[int(machine), proxy] += repetitions * plan.sketch_word_bits
            repl = search["replacement"]
            if repl is not None:
                load[proxy, int(home[repl[0]])] += eb
                load[proxy, int(home[repl[1]])] += eb
    return load


def dynamic_msf_updates(
    cluster,
    seed: int = 0,
    plan: UpdatePlan | None = None,
    *,
    repetitions: int | None = None,
    hash_family: str | None = None,
    sketch: SketchConfig | None = None,
    max_phases: int | None = None,
    charge_shared_randomness: bool = True,
) -> DynamicMSFResult:
    """Build the MST distributively, then replay ``plan`` against it.

    This is the implementation behind the ``"mst_dynamic"`` registry
    entry; prefer ``Session.run("mst_dynamic", ...)`` for new code.  The
    initial build is the full Theorem-2 run (charging the cluster's
    ledger as usual); every subsequent batch is charged as one
    ``update:batch:<i>`` bulk step priced by :func:`_batch_load`.  With a
    benign plan the run is byte-identical to ``"mst"`` plus the
    maintained-state bookkeeping — no update steps are charged.
    """
    plan = (plan if plan is not None else UpdatePlan()).validate()
    repetitions, hash_family = resolve_sketch(sketch, repetitions, hash_family)
    ledger = cluster.ledger
    rounds_before = ledger.total_rounds
    initial = minimum_spanning_tree_distributed(
        cluster,
        seed,
        repetitions=repetitions,
        hash_family=hash_family,
        max_phases=max_phases,
        charge_shared_randomness=charge_shared_randomness,
    )
    build_rounds = ledger.total_rounds - rounds_before

    state = MaintainedForest(cluster.graph)
    home = np.asarray(cluster.partition.home, dtype=np.int64)
    k = int(cluster.k)
    base = plan.base_seed(seed)
    update_rounds = 0
    update_bits = 0
    updates_applied = 0
    batch_stats: list[dict] = []
    for i, spec in enumerate(plan.batches):
        records = generate_batch(state, spec, batch_seed(base, i))
        load = _batch_load(k, home, records, plan, repetitions)
        rounds = ledger.charge_load_matrix(
            f"update:batch:{i}", load, messages=sum(1 for r in records if r["applied"])
        )
        applied = [r for r in records if r["applied"]]
        searches = [r for r in applied if r.get("search") is not None]
        off = load.copy()
        np.fill_diagonal(off, 0)
        bits = int(off.sum())
        update_rounds += rounds
        update_bits += bits
        updates_applied += len(applied)
        batch_stats.append(
            {
                "batch": i,
                "kind": spec.kind,
                "requested": spec.size,
                "applied": len(applied),
                "inserts": sum(1 for r in applied if r["op"] == "insert"),
                "deletes": sum(1 for r in applied if r["op"] == "delete"),
                "tree_changes": sum(1 for r in applied if r["tree_changed"]),
                "replacement_searches": len(searches),
                "replacements_found": sum(
                    1 for r in searches if r["search"]["replacement"] is not None
                ),
                "rounds": int(rounds),
                "bits": bits,
                "n_components": state.n_components,
            }
        )

    forest_u, forest_v, forest_weights = state.forest_arrays()
    return DynamicMSFResult(
        initial=initial,
        labels=state.labels(),
        n_components=state.n_components,
        total_weight=state.total_weight,
        forest_u=forest_u,
        forest_v=forest_v,
        forest_weights=forest_weights,
        final_m=len(state.edges),
        build_rounds=build_rounds,
        update_rounds=update_rounds,
        update_bits=update_bits,
        updates_applied=updates_applied,
        batch_stats=batch_stats,
    )
