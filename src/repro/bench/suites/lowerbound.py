"""Lower-bound benchmarks: the Section-4 Omega~(n/k^2) simulation argument.

Theorem 5 / Figure 1: SCS instances from random-partition disjointness,
executed by the real two-party protocol under the Alice/Bob machine split.
"""

from __future__ import annotations

from repro.bench.registry import register_benchmark
from repro.lowerbounds import make_instance, simulate_scs_protocol, trivial_protocol_bits


@register_benchmark(
    "scs_cut_traffic",
    title="Theorem 5 / Figure 1: SCS cut traffic grows Omega(b)",
    group="lowerbound",
    cells=[{"b": b, "k": 8} for b in (64, 128, 256, 512, 1024)],
    quick_cells=[{"b": b, "k": 8} for b in (64, 128)],
    seed=0,
)
def _cut_traffic(cell: dict, seed: int) -> dict:
    b = cell["b"]
    out = simulate_scs_protocol(b=b, k=cell["k"], seed=seed + b, intersecting=False)
    trivial = trivial_protocol_bits(make_instance(b, seed=seed + b, intersecting=False))
    return {
        "rounds": int(out.rounds),
        "cut_bits": int(out.cut_bits),
        "cut_bits_per_b": out.cut_bits / b,
        "trivial_bits": int(trivial),
        "capacity_ok": bool(out.cut_bits <= out.cut_capacity_bits),
        "correct": bool(out.correct),
    }


@register_benchmark(
    "scs_correctness",
    title="Theorem 5: protocol correctness on disjoint and intersecting instances",
    group="lowerbound",
    cells=[
        {"b": b, "k": 8, "intersecting": inter}
        for b in (128, 512)
        for inter in (False, True)
    ],
    quick_cells=[
        {"b": 64, "k": 8, "intersecting": inter} for inter in (False, True)
    ],
    seed=0,
)
def _correctness(cell: dict, seed: int) -> dict:
    b, inter = cell["b"], cell["intersecting"]
    out = simulate_scs_protocol(
        b=b, k=cell["k"], seed=seed + 7 * b + int(inter), intersecting=inter
    )
    return {
        "answer": bool(out.answer),
        "expected": bool(out.expected),
        "correct": bool(out.correct),
    }
