"""Repository-wide property-based tests (hypothesis).

These tie invariants across layers: ledger accounting identities under
arbitrary traffic, sketch linearity under arbitrary regroupings, and
DRR forest laws under arbitrary pointer configurations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.comm import CommStep
from repro.cluster.ledger import RoundLedger
from repro.cluster.topology import ClusterTopology
from repro.core.drr import build_drr_forest
from repro.core.labels import PartIndex, initial_labels
from repro.core.outgoing import OutgoingSelection
from repro.cluster.partition import random_vertex_partition
from repro.sketch.edgespace import incident_slots_and_signs
from repro.sketch.l0 import SketchContext, SketchSpec
from repro.util.bits import ceil_div
from repro.util.rng import SeedStream


@given(
    k=st.integers(min_value=2, max_value=8),
    bw=st.integers(min_value=1, max_value=1000),
    msgs=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 10_000)),
        max_size=60,
    ),
)
@settings(max_examples=60, deadline=None)
def test_ledger_accounting_identities(k, bw, msgs):
    """rounds = ceil(max offdiag / bw); totals conserve; diagonal free."""
    led = RoundLedger(ClusterTopology(k=k, bandwidth_bits=bw))
    step = CommStep(led, "prop")
    expected = np.zeros((k, k), dtype=np.int64)
    for s, d, b in msgs:
        s, d = s % k, d % k
        step.add(s, d, b)
        if s != d:
            expected[s, d] += b
    rounds = step.deliver()
    assert rounds == ceil_div(int(expected.max(initial=0)), bw)
    assert led.total_bits == int(expected.sum())
    assert led.sent_bits.sum() == led.received_bits.sum() == led.total_bits
    assert np.array_equal(led.load_total, expected)


@given(
    n_groups=st.integers(min_value=1, max_value=6),
    n_edges=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_sketch_aggregation_associativity(n_groups, n_edges, seed):
    """aggregate(aggregate(x, f), g) == aggregate(x, g o f) entrywise."""
    n = 32
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(n_edges):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    owners, others = [], []
    for u, v in edges:
        owners += [u, v]
        others += [v, u]
    owners = np.array(owners, dtype=np.int64) if owners else np.empty(0, np.int64)
    others = np.array(others, dtype=np.int64) if others else np.empty(0, np.int64)
    slots, signs = incident_slots_and_signs(n, owners, others)
    spec = SketchSpec.for_graph(n, seed=seed, repetitions=2)
    ctx = SketchContext(spec, slots, signs)
    group = (owners % n_groups).astype(np.int64) if owners.size else np.empty(0, np.int64)
    base = ctx.group_sums(group, n_groups)
    f = rng.integers(0, max(1, n_groups // 2 + 1), n_groups).astype(np.int64)
    n_mid = int(f.max(initial=0)) + 1
    g_map = rng.integers(0, 2, n_mid).astype(np.int64)
    two_step = base.aggregate(f, n_mid).aggregate(g_map, 2)
    one_step = base.aggregate(g_map[f], 2)
    assert np.array_equal(two_step.counts, one_step.counts)
    assert np.array_equal(two_step.sums, one_step.sums)
    assert np.array_equal(two_step.fps, one_step.fps)


@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=999),
    edge_frac=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_drr_forest_laws(n, seed, edge_frac):
    """For any pointer configuration: acyclic, rank-increasing, depth-consistent."""
    rng = np.random.default_rng(seed)
    partition = random_vertex_partition(n, 2, seed)
    labels = initial_labels(n)
    parts = PartIndex.build(labels, partition)
    c = parts.n_components
    found = rng.random(c) < edge_frac
    nbr = (parts.comp_labels + 1 + rng.integers(0, max(1, n - 1), c)) % n
    nbr_ok = nbr != parts.comp_labels
    found &= nbr_ok
    sel = OutgoingSelection(
        parts=parts,
        comp_proxy=np.zeros(c, dtype=np.int64),
        sketch_nonzero=found.copy(),
        found=found.copy(),
        slot=np.zeros(c, dtype=np.int64),
        internal_vertex=parts.comp_labels.copy(),
        foreign_vertex=nbr.astype(np.int64),
        neighbor_label=nbr.astype(np.int64),
        edge_weight=np.full(c, np.nan),
    )
    forest = build_drr_forest(parts, sel, SeedStream(seed ^ 0xD22))
    # Rank-increasing parents, consistent depths, roots where not found.
    for ci in range(c):
        p = forest.parent[ci]
        if p >= 0:
            assert (forest.ranks[p], forest.comp_labels[p]) > (
                forest.ranks[ci],
                forest.comp_labels[ci],
            )
            assert forest.depth[ci] == forest.depth[p] + 1
        else:
            assert forest.depth[ci] == 0
        if not found[ci]:
            assert forest.parent[ci] == -1
    # Non-merging components are exactly the roots among found=False plus
    # higher-ranked endpoints; at least one root always exists.
    assert (forest.parent < 0).any()
