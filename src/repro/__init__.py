"""repro — reproduction of *Fast Distributed Algorithms for Connectivity and
MST in Large Graphs* (Pandurangan, Robinson, Scquizzato; SPAA 2016).

The package implements the **k-machine model** (a.k.a. the Big Data model)
as an instrumented simulator, the paper's O~(n/k^2)-round algorithms for
connectivity / MST / approximate min-cut / graph verification, the
substrates they rely on (linear l0-sampling graph sketches, distributed
random ranking, randomized proxy routing), the baselines the paper compares
against analytically, and the Section-4 lower-bound simulations.

Quickstart
----------
>>> from repro import generators, KMachineCluster, connected_components_distributed
>>> g = generators.gnm_random(n=1000, m=4000, seed=7)
>>> cluster = KMachineCluster.create(g, k=8, seed=7)
>>> result = connected_components_distributed(cluster, seed=7)
>>> result.n_components
1

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
system inventory.
"""

from repro.graphs import Graph, GraphBuilder, generators, reference
from repro.cluster import ClusterTopology, KMachineCluster, RoundLedger
from repro.core import (
    ConnectivityResult,
    MinCutResult,
    MSTResult,
    connected_components_distributed,
    count_components_distributed,
    mincut_approx_distributed,
    minimum_spanning_tree_distributed,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterTopology",
    "ConnectivityResult",
    "Graph",
    "GraphBuilder",
    "KMachineCluster",
    "MSTResult",
    "MinCutResult",
    "RoundLedger",
    "connected_components_distributed",
    "count_components_distributed",
    "generators",
    "mincut_approx_distributed",
    "minimum_spanning_tree_distributed",
    "reference",
    "verify",
]
