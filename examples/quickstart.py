"""Quickstart: distributed connectivity through the unified runtime API.

Builds a random graph, runs the paper's O~(n/k^2) connectivity algorithm
(Theorem 1) through a :class:`repro.runtime.Session`, and walks the
:class:`~repro.runtime.report.RunReport` envelope: the result payload,
the round/bandwidth ledger, per-phase diagnostics, and JSON provenance.
Finishes with the legacy free-function path for comparison (same answers,
same seeds — the registry adapters call those functions).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import generators, reference
from repro.runtime import ClusterConfig, RunConfig, Session, list_algorithms


def main() -> None:
    n, m, k, seed = 2000, 8000, 8, 42
    print("Registered algorithms:", ", ".join(list_algorithms()))

    print(f"\nBuilding G(n={n}, m={m}); config: k={k}, seed={seed} (RVP)...")
    g = generators.gnm_random(n, m, seed=seed)
    config = RunConfig(seed=seed, cluster=ClusterConfig(k=k))
    session = Session(g, config=config)

    print("Running the Theorem-1 connectivity algorithm via Session.run()...")
    report = session.run("connectivity")
    truth = reference.count_components(g)
    res = report.result
    print(f"  components found: {res['n_components']} (sequential reference: {truth})")
    print(
        f"  phases: {res['phases']}   rounds: {report.rounds}"
        f"   converged: {res['converged']}"
    )
    print(f"  spanning forest edges collected at proxies: {res['forest_edges']}")
    print(f"  total communication: {report.total_bits / 1e6:.1f} Mbit")

    print("\nRound breakdown by step type (from the report's ledger section):")
    for label, rounds in sorted(report.ledger["breakdown"].items(), key=lambda x: -x[1]):
        print(f"  {label:<20s} {rounds}")

    print("\nPer-phase progress (components, DRR depth, merge iterations):")
    for s in report.phase_stats:
        print(
            f"  phase {s['phase']:>2}: {s['components_start']:>5} -> "
            f"{s['components_end']:<5} components, depth {s['drr_max_depth']},"
            f" {s['merge_iterations']} merge iterations, {s['rounds']} rounds"
        )

    print("\nThe whole run serializes as one JSON envelope (provenance included):")
    payload = report.to_json()
    print(f"  report.to_json() -> {len(payload)} bytes; seed precedence recorded:")
    print(f"  resolved seed {report.seed} (per-run > config.seed > default; DESIGN.md)")

    print("\nSweeps are one call — rounds vs k (superlinear speedup, Theorem 1):")
    for r in session.sweep("connectivity", ks=(2, 4, 8, 16)):
        print(f"  k={r.graph['k']:>2}  rounds={r.rounds}")

    # Compatibility note: the original free functions remain supported and
    # give the same answers for the same seeds — they ARE the implementation
    # behind the registry.
    from repro import KMachineCluster, connected_components_distributed

    cluster = KMachineCluster.create(g, k=k, seed=seed)
    legacy = connected_components_distributed(cluster, seed=seed)
    print(
        f"\nLegacy path agrees: {legacy.n_components} components in"
        f" {legacy.rounds} rounds (Session reported {report.rounds})"
    )


if __name__ == "__main__":
    main()
