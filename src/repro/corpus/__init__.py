"""Deterministic input corpus: generator protocol + out-of-core store.

Two layers (see :mod:`repro.corpus.families` and
:mod:`repro.corpus.manager` for the contracts):

* :data:`CORPUS_FAMILIES` — every graph family behind one self-describing,
  deterministic, seed-contract-enforcing :class:`CorpusFamily` spec;
* :class:`CorpusManager` — content-addressed materialization to
  memory-mapped npz edge arrays, with digest verification.

Consumers reference materialized instances by the ``corpus:<entry-id>``
graph identity, which :class:`~repro.runtime.session.Session`, the bench
suites, and the service all resolve through a shared manager.
"""

from repro.corpus.families import (
    CORPUS_FAMILIES,
    CorpusFamily,
    CorpusParam,
    get_family,
    list_families,
    parse_spec,
)
from repro.corpus.manager import (
    MANIFEST_FORMAT,
    CorpusEntry,
    CorpusManager,
    CorpusVerifyError,
    default_root,
    edge_digest,
    entry_id_for,
)

__all__ = [
    "CORPUS_FAMILIES",
    "CorpusEntry",
    "CorpusFamily",
    "CorpusManager",
    "CorpusParam",
    "CorpusVerifyError",
    "MANIFEST_FORMAT",
    "default_root",
    "edge_digest",
    "entry_id_for",
    "get_family",
    "list_families",
    "parse_spec",
]
