"""Integration tests for the Theorem-2 MST algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import KMachineCluster
from repro.core.mst import minimum_spanning_tree_distributed
from repro.graphs import generators as gen
from repro.graphs import reference as ref


def run(g, k=8, seed=5, **kw):
    cl = KMachineCluster.create(g, k=k, seed=seed)
    return cl, minimum_spanning_tree_distributed(cl, seed=seed, **kw)


def edge_set(us, vs):
    return set(zip(np.minimum(us, vs).tolist(), np.maximum(us, vs).tolist()))


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_mst_on_unique_weights(self, seed):
        g = gen.with_unique_weights(gen.gnm_random(120, 420, seed=seed), seed=seed)
        _, res = run(g, seed=seed)
        assert res.certified
        kr = ref.kruskal_mst(g)
        assert edge_set(res.edges_u, res.edges_v) == edge_set(g.edges_u[kr], g.edges_v[kr])
        assert res.total_weight == pytest.approx(ref.mst_weight(g, kr))

    def test_forest_on_disconnected(self):
        g = gen.with_unique_weights(gen.planted_components(100, 4, seed=4), seed=4)
        _, res = run(g, seed=4)
        kr = ref.kruskal_mst(g)
        assert res.n_edges == kr.size == g.n - 4
        assert res.total_weight == pytest.approx(ref.mst_weight(g, kr))

    def test_tree_input_returns_all_edges(self):
        g = gen.with_unique_weights(gen.random_spanning_tree(80, seed=5), seed=5)
        _, res = run(g, seed=5)
        assert res.n_edges == 79
        assert edge_set(res.edges_u, res.edges_v) == edge_set(g.edges_u, g.edges_v)

    def test_duplicate_weights_still_spanning(self):
        # Without unique weights the MST may be non-unique; the output must
        # still be a minimum-weight spanning forest.
        g = gen.gnm_random(90, 300, seed=6).with_weights(
            np.ones(300, dtype=np.float64)
        )
        _, res = run(g, seed=6)
        assert res.n_edges == g.n - 1
        assert res.total_weight == pytest.approx(float(g.n - 1))

    @pytest.mark.parametrize("k", [2, 4, 16])
    def test_various_k(self, k):
        g = gen.with_unique_weights(gen.gnm_random(100, 350, seed=7), seed=7)
        _, res = run(g, k=k, seed=7)
        kr = ref.kruskal_mst(g)
        assert res.total_weight == pytest.approx(ref.mst_weight(g, kr))


class TestOutputModes:
    def test_strict_costs_more_on_star(self):
        # Theorem 2(b): the strict output criterion forces Omega~(n/k) —
        # on a star, the centre's home machine must learn every edge.
        g = gen.with_unique_weights(gen.star_graph(2000), seed=8)
        _, relaxed = run(g, k=8, seed=8, output="relaxed")
        _, strict = run(g, k=8, seed=8, output="strict")
        assert strict.rounds > relaxed.rounds
        assert strict.total_weight == pytest.approx(relaxed.total_weight)

    def test_invalid_output_mode(self):
        g = gen.with_unique_weights(gen.path_graph(10), seed=9)
        cl = KMachineCluster.create(g, k=2, seed=9)
        with pytest.raises(ValueError, match="output"):
            minimum_spanning_tree_distributed(cl, output="both")

    def test_owner_machines_valid(self):
        g = gen.with_unique_weights(gen.gnm_random(80, 240, seed=10), seed=10)
        cl, res = run(g, seed=10)
        assert res.owner_machine.min(initial=0) >= 0
        assert res.owner_machine.max(initial=0) < cl.k


class TestEliminationLoop:
    def test_fixed_budget_mode_uncertified(self):
        g = gen.with_unique_weights(gen.gnm_random(100, 400, seed=11), seed=11)
        _, res = run(g, seed=11, strict_elimination_budget=2)
        # With only 2 elimination iterations per phase the MWOE is not
        # certified, but the result must still be a spanning tree.
        assert res.n_edges == g.n - 1
        kr = ref.kruskal_mst(g)
        assert res.total_weight >= ref.mst_weight(g, kr) - 1e-9

    def test_elimination_iterations_logarithmic(self):
        g = gen.with_unique_weights(gen.gnm_random(300, 1500, seed=12), seed=12)
        _, res = run(g, seed=12)
        worst = max(s.elimination_iterations for s in res.phase_stats)
        assert worst <= 4 * np.log2(300) + 8

    def test_phase_stats_certified_counts(self):
        g = gen.with_unique_weights(gen.gnm_random(100, 300, seed=13), seed=13)
        _, res = run(g, seed=13)
        for s in res.phase_stats:
            assert s.mwoe_uncertified == 0  # fixpoint mode certifies everything


@given(
    n=st.integers(min_value=10, max_value=80),
    extra=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=10, deadline=None)
def test_property_mst_weight_matches_kruskal(n, extra, seed):
    m = min(n - 1 + extra, n * (n - 1) // 2)
    base = gen.gnm_random(n, m, seed=seed)
    g = gen.with_unique_weights(base, seed=seed)
    cl = KMachineCluster.create(g, k=4, seed=seed)
    res = minimum_spanning_tree_distributed(cl, seed=seed)
    kr = ref.kruskal_mst(g)
    assert res.total_weight == pytest.approx(ref.mst_weight(g, kr))
