"""Sharded execution: chunking determinism and worker-count invariance.

The contract under test (DESIGN.md §14): the shard pool must be invisible
in every output byte.  ``RunReport`` envelopes produced at any
``parallel=N`` must match the serial run bit for bit, because the sharded
kernels are either elementwise (chunk concatenation reproduces the
unchunked array) or exact-integer reductions (partial sums are
associative).  A failure here means a kernel picked up a chunk-shape
dependence — float accumulation, order-sensitive hashing, or a merge
outside chunk order.
"""

from __future__ import annotations

import threading

import pytest

from repro import generators
from repro.runtime import ClusterConfig, RunConfig, Session
from repro.util.parallel import (
    MIN_SHARD_ITEMS,
    ShardPool,
    active_pool,
    parallel_default,
    parallel_shards,
    sharded,
)


def _graph(weighted: bool):
    g = generators.gnm_random(600, 2400, seed=7)
    return generators.with_unique_weights(g, seed=7) if weighted else g


# ---------------------------------------------------------------------------
# ShardPool mechanics
# ---------------------------------------------------------------------------


def test_pool_requires_two_workers():
    with pytest.raises(ValueError):
        ShardPool(1)


def test_ranges_cover_contiguously():
    pool = ShardPool(4)
    try:
        for n in (0, 1, MIN_SHARD_ITEMS - 1, MIN_SHARD_ITEMS, 3 * MIN_SHARD_ITEMS + 17):
            spans = pool.ranges(n)
            assert len(spans) <= pool.workers
            # Contiguous, in order, covering [0, n) exactly.
            expect_lo = 0
            for lo, hi in spans:
                assert lo == expect_lo and hi > lo
                expect_lo = hi
            assert expect_lo == n
    finally:
        pool.shutdown()


def test_small_inputs_stay_single_chunk():
    """Below MIN_SHARD_ITEMS the submit overhead isn't worth it."""
    pool = ShardPool(8)
    try:
        assert pool.ranges(MIN_SHARD_ITEMS - 1) == [(0, MIN_SHARD_ITEMS - 1)]
        assert len(pool.ranges(8 * MIN_SHARD_ITEMS)) == 8
    finally:
        pool.shutdown()


def test_map_ranges_returns_chunk_order():
    """Results line up with ranges() regardless of completion order."""
    pool = ShardPool(4)
    try:
        n = 4 * MIN_SHARD_ITEMS
        gate = threading.Event()

        def fn(lo, hi):
            if lo == 0:
                gate.wait(timeout=10)  # first chunk finishes last
            else:
                gate.set()
            return (lo, hi)

        assert pool.map_ranges(fn, n) == pool.ranges(n)
    finally:
        pool.shutdown()


def test_map_ranges_propagates_worker_errors():
    pool = ShardPool(2)
    try:
        def boom(lo, hi):
            raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError, match="shard failed"):
            pool.map_ranges(boom, 4 * MIN_SHARD_ITEMS)
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Ambient-pool plumbing
# ---------------------------------------------------------------------------


def test_parallel_default_env_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert parallel_default() is None
    monkeypatch.setenv("REPRO_PARALLEL", "")
    assert parallel_default() is None
    monkeypatch.setenv("REPRO_PARALLEL", "4")
    assert parallel_default() == 4
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    assert parallel_default() == 1  # floored: explicit serial
    monkeypatch.setenv("REPRO_PARALLEL", "three")
    with pytest.raises(ValueError):
        parallel_default()


def test_parallel_shards_overrides_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert active_pool() is None
    with parallel_shards(2) as outer:
        assert active_pool() is outer and outer.workers == 2
        with parallel_shards(1):
            assert active_pool() is None  # explicit serial, no stacking
        assert active_pool() is outer
    assert active_pool() is None


def test_parallel_shards_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    with parallel_shards(None) as pool:
        assert pool is not None and pool.workers == 2
    monkeypatch.setenv("REPRO_PARALLEL", "1")
    with parallel_shards(None) as pool:
        assert pool is None


def test_sharded_restores_previous_pool():
    pool = ShardPool(2)
    try:
        with sharded(pool):
            assert active_pool() is pool
            with sharded(None):
                assert active_pool() is None
            assert active_pool() is pool
        assert active_pool() is None
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# Worker-count invariance of full runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["connectivity", "mst"])
def test_envelopes_identical_at_any_worker_count(algorithm):
    g = _graph(weighted=algorithm == "mst")
    cfg = RunConfig(seed=11, cluster=ClusterConfig(k=6))
    baseline = Session(g, config=cfg).run(algorithm).to_json(include_timing=False)
    for workers in (1, 2, 4):
        sess = Session(g, config=cfg, parallel=workers)
        try:
            got = sess.run(algorithm).to_json(include_timing=False)
        finally:
            sess.close()
        assert got == baseline, f"parallel={workers} diverged from serial"


def test_run_parallel_argument_overrides_session_default():
    g = _graph(weighted=False)
    cfg = RunConfig(seed=11, cluster=ClusterConfig(k=6))
    baseline = Session(g, config=cfg).run("connectivity").to_json(include_timing=False)
    sess = Session(g, config=cfg, parallel=1)
    try:
        got = sess.run("connectivity", parallel=3).to_json(include_timing=False)
    finally:
        sess.close()
    assert got == baseline


def test_env_parallel_matches_serial(monkeypatch):
    g = _graph(weighted=False)
    cfg = RunConfig(seed=11, cluster=ClusterConfig(k=6))
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    baseline = Session(g, config=cfg).run("connectivity").to_json(include_timing=False)
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    sess = Session(g, config=cfg)
    try:
        got = sess.run("connectivity").to_json(include_timing=False)
    finally:
        sess.close()
    assert got == baseline


def test_sequential_sweep_parallel_matches_serial():
    g = _graph(weighted=False)
    cfg = RunConfig(cluster=ClusterConfig(k=4))
    serial = Session(g, config=cfg).sweep("connectivity", seeds=[1, 2], processes=1)
    sess = Session(g, config=cfg, parallel=2)
    try:
        shard = sess.sweep("connectivity", seeds=[1, 2], processes=1)
    finally:
        sess.close()
    assert [r.to_json(include_timing=False) for r in serial] == [
        r.to_json(include_timing=False) for r in shard
    ]
