"""The always-on graph service: warm sessions, coalescing, framed JSON.

:class:`GraphService` owns a fixed pool of *workers*, each a
single-threaded executor wrapping one warm
:class:`~repro.runtime.session.Session` (bounded LRU cluster cache, see
DESIGN.md §10) plus a bounded LRU graph cache.  Every ``run`` dispatches
by **key affinity**: the request's canonical cluster key is hashed
(CRC-32, stable across processes) onto one worker, so all traffic sharing
a *(family|scenario, n, seed, k, scheme, epoch)* key lands on the same
session and serializes there.  That single decision buys three things:

* **coalescing** — in-flight and subsequent same-key requests reuse the
  one cached cluster build instead of racing to re-partition;
* **safety** — runs sharing a cluster never execute concurrently (a run
  resets and mutates the cluster ledger), with no per-run locking;
* **determinism** — the first request for a key is a cache miss and every
  later one a hit, *independent of arrival interleaving*, so the
  coalescing hit-rate is a pure function of the request mix and safe to
  perf-gate (``BENCH_service_*``).

Reports cross the wire as ``RunReport.to_dict(include_timing=False)`` —
the byte-deterministic envelope — with per-request wall time carried in a
separate advisory ``service`` section.  Ops: ``run``, ``sweep``
(streamed), ``scenarios``, ``bench_info``, ``stats``, ``ping``,
``shutdown``.  Protocol details live in :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any

from repro.runtime.session import Session
from repro.service.protocol import ProtocolError, RunRequest, read_frame, write_frame

__all__ = ["GraphService"]


class _Worker:
    """One service worker: a serial executor around a warm session.

    The executor's single thread is the serialization point — everything
    that touches this worker's session or graph cache runs inside it, so
    the worker needs no locks of its own beyond the session's.
    """

    def __init__(
        self,
        index: int,
        max_clusters: int,
        graph_cache_size: int,
        corpus=None,
        parallel: int | None = None,
    ) -> None:
        self.index = index
        self.corpus = corpus
        self.session = Session(max_clusters=max_clusters, corpus=corpus, parallel=parallel)
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-service-{index}"
        )
        self.graph_cache_size = max(1, int(graph_cache_size))
        self.graphs: OrderedDict[str, Any] = OrderedDict()
        self.graph_hits = 0
        self.graph_misses = 0
        self.inflight: dict[str, int] = {}

    def _graph_for(self, spec: RunRequest):
        """The (LRU-cached) input graph for one request.

        ``corpus`` requests additionally go through the *service-shared*
        corpus manager, so two workers resolving one ``corpus:`` identity
        coalesce onto a single mmap open even before their per-worker
        LRUs warm up.
        """
        key = spec.graph_key()
        hit = self.graphs.get(key)
        if hit is not None:
            self.graph_hits += 1
            self.graphs.move_to_end(key)
            return hit
        self.graph_misses += 1
        graph = spec.build_graph(corpus=self.corpus)
        self.graphs[key] = graph
        while len(self.graphs) > self.graph_cache_size:
            self.graphs.popitem(last=False)
        return graph

    def execute(self, spec: RunRequest) -> dict:
        """Run one request to a response body (executor thread only)."""
        t0 = time.perf_counter()
        graph = self._graph_for(spec)
        config = spec.run_config()
        before = self.session.cache_info()
        report = self.session.run(spec.algorithm, graph, config=config, epoch=spec.epoch)
        after = self.session.cache_info()
        return {
            "report": report.to_dict(include_timing=False),
            "service": {
                "worker": self.index,
                "coalesced": after["hits"] > before["hits"],
                "cluster_key": spec.cluster_key(),
                "wall_time_s": time.perf_counter() - t0,
            },
        }

    def close(self) -> None:
        """Shut down the worker's executor and release its caches."""
        self.executor.shutdown(wait=True, cancel_futures=True)
        self.session.close()
        self.graphs.clear()


class GraphService:
    """The asyncio server over the worker pool (see module docstring).

    Parameters
    ----------
    workers:
        Session workers; each key's traffic serializes on exactly one.
    max_clusters:
        Per-worker cluster-cache bound (``Session(max_clusters=...)``);
        size it above the mix's per-worker distinct-key count to keep
        coalescing accounting eviction-free and hence deterministic.
    graph_cache_size:
        Per-worker input-graph LRU bound.
    max_requests:
        Stop accepting after this many completed requests (``None`` =
        serve forever) — the self-terminating mode tests and smoke runs
        use instead of process management.
    corpus:
        Optional :class:`~repro.corpus.manager.CorpusManager` shared by
        *all* workers: ``corpus:`` graph identities resolve through its
        single load LRU, so same-entry requests on different workers
        still open one mmap.  ``None`` leaves corpus requests resolving
        through a per-call default manager.
    parallel:
        In-run shard workers per session (``Session(parallel=...)``, see
        :mod:`repro.runtime.parallel`): each request's sketch kernels
        shard over the worker session's thread pool with byte-identical
        reports, so the response envelopes are independent of the
        setting.  ``None`` defers to ``REPRO_PARALLEL``.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_clusters: int = 32,
        graph_cache_size: int = 16,
        max_requests: int | None = None,
        corpus=None,
        parallel: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._corpus = corpus
        self._workers = [
            _Worker(i, max_clusters, graph_cache_size, corpus, parallel)
            for i in range(int(workers))
        ]
        self._max_requests = max_requests
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = time.perf_counter()
        self._counters = {
            "requests": 0,
            "errors": 0,
            "runs": 0,
            "reports_streamed": 0,
            "inflight_coalesced": 0,
        }
        self._by_op: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; return the (host, port) actually bound."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        return str(sock_host), int(sock_port)

    async def wait_closed(self) -> None:
        """Block until a shutdown is requested (op, or max_requests hit)."""
        await self._stop.wait()

    def request_shutdown(self) -> None:
        """Flag the service to stop (idempotent; safe from the event loop)."""
        self._stop.set()

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain connections, close workers."""
        self.request_shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = [t for t in self._conn_tasks if not t.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Executor shutdown blocks on in-flight runs: do it off-loop.
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.close)

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregated counters (deterministic parts + advisory parts).

        ``clusters`` / ``graphs`` aggregate the per-worker cache counters —
        under key-affinity dispatch and an eviction-free mix these are pure
        functions of the mix.  ``inflight_coalesced`` (requests that
        arrived while a same-key request was already executing) and
        ``uptime_s`` depend on real-time interleaving: advisory only.
        """
        sessions = [w.session.cache_info() for w in self._workers]
        return {
            "workers": len(self._workers),
            "requests": dict(self._counters, by_op=dict(sorted(self._by_op.items()))),
            "clusters": {
                "hits": sum(s["hits"] for s in sessions),
                "misses": sum(s["misses"] for s in sessions),
                "evictions": sum(s["evictions"] for s in sessions),
                "size": sum(s["size"] for s in sessions),
                "max_clusters": sessions[0]["max_clusters"] if sessions else 0,
            },
            "graphs": {
                "hits": sum(w.graph_hits for w in self._workers),
                "misses": sum(w.graph_misses for w in self._workers),
                "size": sum(len(w.graphs) for w in self._workers),
            },
            "corpus": None if self._corpus is None else self._corpus.cache_info(),
            "uptime_s": time.perf_counter() - self._started,
        }

    # -- request handling --------------------------------------------------

    def _worker_for(self, cluster_key: str) -> _Worker:
        """Key-affinity dispatch: CRC-32 of the canonical key, mod workers."""
        return self._workers[zlib.crc32(cluster_key.encode("utf-8")) % len(self._workers)]

    async def _execute(self, spec: RunRequest) -> dict:
        """Run one request on its affine worker; track in-flight coalescing."""
        key = spec.cluster_key()
        worker = self._worker_for(key)
        pending = worker.inflight.get(key, 0)
        if pending:
            self._counters["inflight_coalesced"] += 1
        worker.inflight[key] = pending + 1
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(worker.executor, worker.execute, spec)
        finally:
            left = worker.inflight.get(key, 1) - 1
            if left:
                worker.inflight[key] = left
            else:
                worker.inflight.pop(key, None)
        self._counters["runs"] += 1
        self._counters["reports_streamed"] += 1
        return body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while not self._stop.is_set():
                try:
                    msg = await read_frame(reader)
                except ProtocolError as exc:
                    # Wire-level corruption: report once, drop the link.
                    with contextlib.suppress(Exception):
                        await write_frame(
                            writer, _error_frame(None, exc, op="protocol")
                        )
                    break
                if msg is None:
                    break
                await self._dispatch(msg, writer)
                if self._should_stop():
                    self.request_shutdown()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            # CancelledError included: aclose() cancels connection tasks and
            # a cancelled wait_closed must not escape into the loop's
            # exception handler as teardown noise.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _should_stop(self) -> bool:
        return (
            self._max_requests is not None
            and self._counters["requests"] >= self._max_requests
        )

    async def _dispatch(self, msg: dict, writer: asyncio.StreamWriter) -> None:
        """Answer one request frame with its response frame stream.

        Request-level failures (unknown op/algorithm/scenario, invalid
        fields, a run raising) answer an error frame and keep the
        connection alive — one bad request must not take down a client's
        pipeline.
        """
        op = str(msg.get("op", ""))
        req_id = msg.get("id")
        self._counters["requests"] += 1
        self._by_op[op] = self._by_op.get(op, 0) + 1
        try:
            if op == "run":
                spec = RunRequest.from_dict(msg.get("request") or {})
                body = await self._execute(spec)
                await write_frame(
                    writer, {"ok": True, "final": True, "op": op, "id": req_id, **body}
                )
            elif op == "sweep":
                await self._op_sweep(msg, writer, req_id)
            elif op == "ping":
                await write_frame(
                    writer,
                    {"ok": True, "final": True, "op": op, "id": req_id,
                     "server": {"workers": len(self._workers)}},
                )
            elif op == "stats":
                await write_frame(
                    writer,
                    {"ok": True, "final": True, "op": op, "id": req_id,
                     "stats": self.stats()},
                )
            elif op == "scenarios":
                from repro.scenarios.registry import get_scenario, list_scenarios

                listing = [get_scenario(name).to_dict() for name in list_scenarios()]
                await write_frame(
                    writer,
                    {"ok": True, "final": True, "op": op, "id": req_id,
                     "scenarios": listing},
                )
            elif op in ("bench_info", "bench-info"):
                from repro.bench import get_benchmark, list_benchmarks

                listing = [
                    {
                        "name": name,
                        "title": spec.title,
                        "group": spec.group,
                        "cells": len(spec.cells),
                        "quick_cells": len(spec.quick_cells),
                        "seed": spec.seed,
                    }
                    for name, spec in (
                        (n, get_benchmark(n)) for n in list_benchmarks()
                    )
                ]
                await write_frame(
                    writer,
                    {"ok": True, "final": True, "op": op, "id": req_id,
                     "benchmarks": listing},
                )
            elif op == "shutdown":
                await write_frame(
                    writer, {"ok": True, "final": True, "op": op, "id": req_id}
                )
                self.request_shutdown()
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # request-level: answer and carry on
            self._counters["errors"] += 1
            with contextlib.suppress(Exception):
                await write_frame(writer, _error_frame(req_id, exc, op=op))

    async def _op_sweep(self, msg: dict, writer: asyncio.StreamWriter, req_id) -> None:
        """Stream one report frame per (k, seed) grid point, then a summary.

        Grid order is k-major then seed, matching ``Session.sweep``; each
        point is an independent coalescible request, so a sweep warms the
        same caches run traffic hits.
        """
        spec = RunRequest.from_dict(msg.get("request") or {})
        ks = [int(x) for x in (msg.get("ks") or [spec.k])]
        seeds = [int(x) for x in (msg.get("seeds") or [spec.seed])]
        count = 0
        for k in ks:
            for seed in seeds:
                body = await self._execute(replace(spec, k=k, seed=seed))
                await write_frame(
                    writer,
                    {"ok": True, "final": False, "op": "sweep", "id": req_id, **body},
                )
                count += 1
        await write_frame(
            writer,
            {"ok": True, "final": True, "op": "sweep", "id": req_id, "count": count},
        )


def _error_frame(req_id, exc: BaseException, *, op: str) -> dict:
    return {
        "ok": False,
        "final": True,
        "op": op,
        "id": req_id,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
