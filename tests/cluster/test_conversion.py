"""Tests for the Conversion Theorem cost model and trace replay."""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.conversion import (
    CongestedCliqueTrace,
    conversion_bound,
    replay_trace,
)
from repro.graphs import generators as gen


class TestClosedForm:
    def test_volume_term_scales_inverse_k_squared(self):
        a = conversion_bound(10**6, 10, 1, k=4, message_bits=32, bandwidth_bits=1000)
        b = conversion_bound(10**6, 10, 1, k=16, message_bits=32, bandwidth_bits=1000)
        assert a > 10 * b

    def test_degree_term_scales_inverse_k(self):
        # Delta'-dominated regime: doubling k roughly halves the bound.
        a = conversion_bound(10, 100, 10**4, k=8, message_bits=32, bandwidth_bits=100)
        b = conversion_bound(10, 100, 10**4, k=16, message_bits=32, bandwidth_bits=100)
        assert a > 1.7 * b

    def test_at_least_original_rounds(self):
        assert conversion_bound(0, 42, 0, k=4, message_bits=1, bandwidth_bits=100) >= 42


class TestTrace:
    def test_statistics(self):
        t = CongestedCliqueTrace()
        t.record_round(np.array([0, 1, 2]), np.array([3, 3, 3]), 8)
        t.record_round(np.array([3]), np.array([0]), 8)
        assert t.message_complexity == 4
        assert t.round_complexity == 2
        assert t.max_delta_prime() == 3  # vertex 3 received 3 messages in round 0

    def test_replay_charges_ledger(self):
        g = gen.gnm_random(60, 150, seed=1)
        cl = KMachineCluster.create(g, k=4, seed=1)
        t = CongestedCliqueTrace()
        t.record_round(g.edges_u, g.edges_v, 16)
        rounds = replay_trace(cl, t)
        assert rounds >= 1
        assert cl.ledger.total_rounds == rounds

    def test_replay_intra_machine_round_still_costs_one(self):
        g = gen.path_graph(10)
        home = np.zeros(10, dtype=np.int64)  # everything on machine 0
        from repro.cluster.partition import VertexPartition

        cl = KMachineCluster.create(
            g, k=2, seed=1, partition=VertexPartition(k=2, home=home, seed=0)
        )
        t = CongestedCliqueTrace()
        t.record_round(g.edges_u, g.edges_v, 16)
        assert replay_trace(cl, t) == 1  # sync round even with zero cross traffic


class TestReplayUnderScenarios:
    """Replayed CC traces run on the simulated platform, hostile or not.

    The resolved ROADMAP decision (DESIGN.md §7): a trace's messages are
    real traffic, so replay pays any attached fault model (and epoch
    model) exactly like the paper algorithms' bulk steps — only the
    one-round sync floor (a cited constant, `charge_rounds`) stays clean.
    """

    def _cluster_and_trace(self, k=4, seed=2):
        g = gen.gnm_random(80, 240, seed=seed)
        cl = KMachineCluster.create(g, k=k, seed=seed)
        t = CongestedCliqueTrace()
        for r in range(3):
            t.record_round(g.edges_u, g.edges_v, 16)
        return g, cl, t

    def test_replay_pays_fault_overhead(self):
        from repro.scenarios.faults import FaultModel, FaultPlan

        _, clean_cl, trace = self._cluster_and_trace()
        clean = replay_trace(clean_cl, trace)

        _, cl, trace2 = self._cluster_and_trace()
        cl.ledger.attach_faults(FaultModel(FaultPlan(drop_prob=0.3), run_seed=2))
        faulted = replay_trace(cl, trace2)
        assert faulted > clean, "replayed trace did not pay fault overhead"
        assert sum(s.fault_rounds for s in cl.ledger.steps) == faulted - clean
        assert "faults" in cl.ledger.totals()

    def test_replay_fault_overhead_is_deterministic(self):
        from repro.scenarios.faults import FaultModel, FaultPlan

        results = []
        for _ in range(2):
            _, cl, trace = self._cluster_and_trace()
            cl.ledger.attach_faults(FaultModel(FaultPlan(drop_prob=0.3), run_seed=2))
            replay_trace(cl, trace)
            results.append(cl.ledger.totals())
        assert results[0] == results[1]

    def test_sync_floor_stays_clean(self):
        # All-local trace: the only cost is the charge_rounds sync floor,
        # which passes through unfaulted (a citation, not traffic).
        from repro.cluster.partition import VertexPartition
        from repro.scenarios.faults import FaultModel, FaultPlan

        g = gen.path_graph(10)
        home = np.zeros(10, dtype=np.int64)
        cl = KMachineCluster.create(
            g, k=2, seed=1, partition=VertexPartition(k=2, home=home, seed=0)
        )
        cl.ledger.attach_faults(
            FaultModel(FaultPlan(drop_prob=0.5, bandwidth_factor=0.5), run_seed=7)
        )
        t = CongestedCliqueTrace()
        t.record_round(g.edges_u, g.edges_v, 16)
        assert replay_trace(cl, t) == 1

    def test_replay_pays_epoch_migration(self):
        from repro.cluster.partition import PartitionConfig
        from repro.scenarios.churn import ChurnEvent, ChurnPlan, EpochModel

        g, cl, trace = self._cluster_and_trace()
        plan = ChurnPlan(events=(ChurnEvent(1, "reshuffle"),))
        cl.ledger.attach_epochs(EpochModel(plan, g, cl.partition, PartitionConfig()))
        replay_trace(cl, trace)
        totals = cl.ledger.totals()
        assert totals["epochs"]["n_epochs"] == 2
        assert totals["epochs"]["migration_rounds"] > 0
        assert any(s.label == "epoch:migrate:reshuffle" for s in cl.ledger.steps)
