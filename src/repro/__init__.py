"""repro — reproduction of *Fast Distributed Algorithms for Connectivity and
MST in Large Graphs* (Pandurangan, Robinson, Scquizzato; SPAA 2016).

The package implements the **k-machine model** (a.k.a. the Big Data model)
as an instrumented simulator, the paper's O~(n/k^2)-round algorithms for
connectivity / MST / approximate min-cut / graph verification, the
substrates they rely on (linear l0-sampling graph sketches, distributed
random ranking, randomized proxy routing), the baselines the paper compares
against analytically, and the Section-4 lower-bound simulations.

Quickstart — the unified runtime API
------------------------------------
Everything runnable lives behind one registry and one envelope:

>>> from repro import generators
>>> from repro.runtime import Session, RunConfig, ClusterConfig, list_algorithms
>>> sorted(list_algorithms())  # doctest: +NORMALIZE_WHITESPACE
['boruvka_nosketch', 'connectivity', 'flooding', 'mincut', 'mst',
 'referee', 'rep', 'verify']
>>> g = generators.gnm_random(n=1000, m=4000, seed=7)
>>> session = Session(g, config=RunConfig(seed=7, cluster=ClusterConfig(k=8)))
>>> report = session.run("connectivity")
>>> report.result["n_components"]
1

Each run returns a serializable :class:`~repro.runtime.report.RunReport`
(``report.to_json()`` round-trips losslessly) carrying the result, ledger
totals, phase stats, wall time, and full config provenance.  Seeds resolve
by documented precedence: per-run seed -> ``RunConfig.seed`` -> default.
Sweeps (``session.sweep(..., ks=(2, 4, 8), seeds=range(5))``) and a CLI
(``python -m repro run connectivity --n 200 --k 4``) sit on top.

Compatibility note: the original free functions remain fully supported —

>>> from repro import KMachineCluster, connected_components_distributed
>>> cluster = KMachineCluster.create(g, k=8, seed=7)
>>> connected_components_distributed(cluster, seed=7).n_components
1

they are the implementation the registry adapters call, and produce the
same answers for the same seeds as the Session path.

Benchmarks are first-class as well: every experiment grid registers in
:mod:`repro.bench` and runs into serializable ``BENCH_<name>.json``
envelopes that CI regression-gates (``python -m repro bench run --quick
--all``; see DESIGN.md section 6).

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
system inventory and the runtime API / seed-precedence policy.
"""

from repro.graphs import Graph, GraphBuilder, generators, reference
from repro.cluster import ClusterTopology, KMachineCluster, RoundLedger
from repro.core import (
    ConnectivityResult,
    MinCutResult,
    MSTResult,
    connected_components_distributed,
    count_components_distributed,
    mincut_approx_distributed,
    minimum_spanning_tree_distributed,
    verify,
)
from repro.runtime import (
    ClusterConfig,
    RunConfig,
    RunReport,
    Session,
    SketchConfig,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    run_algorithm,
)

__version__ = "1.1.0"

__all__ = [
    "ClusterConfig",
    "ClusterTopology",
    "ConnectivityResult",
    "Graph",
    "GraphBuilder",
    "KMachineCluster",
    "MSTResult",
    "MinCutResult",
    "RoundLedger",
    "RunConfig",
    "RunReport",
    "Session",
    "SketchConfig",
    "connected_components_distributed",
    "count_components_distributed",
    "generators",
    "get_algorithm",
    "list_algorithms",
    "mincut_approx_distributed",
    "minimum_spanning_tree_distributed",
    "reference",
    "register_algorithm",
    "run_algorithm",
    "verify",
]
