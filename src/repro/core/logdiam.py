"""Log-diameter MPC connectivity via neighborhood doubling (graph exponentiation).

The in-registry rival to Theorem 1: Andoni-Stein-Song-Wang's MPC
connectivity (arXiv:1805.03055, PAPERS.md) converges in ``O(log D)``
rounds by *squaring* reachability each step instead of merging one
Boruvka fringe per phase.  The k-machine bounds of the source paper are
diameter-independent (O~(n/k^2) rounds whatever D is); the MPC bound is
diameter-dependent but wins exactly on the low-diameter inputs the
worst-case family registry probes.  Shipping both through one
:class:`~repro.cluster.ledger.RoundLedger` vocabulary is what makes the
``BENCH_crossover_logdiam`` study meaningful.

The simulated algorithm (a faithful-in-spirit, honestly-priced variant):

* every vertex ``v`` maintains a **ball** ``B(v)``: the ``s`` smallest
  vertex ids it has learned of in its component (``s`` is the *space
  bound*, the per-vertex analogue of the paper's ``n^delta`` machine
  space; ``None`` means unbounded).  ``label(v) = min B(v)``.
* each **doubling round**, ``v`` pulls ``B(u)`` from every ``u`` in
  ``B(v)`` (graph exponentiation: reach-radius doubles while balls are
  untruncated) and also receives ``label(u)`` from every *input-graph*
  neighbor ``u`` (the flooding floor that keeps truncated runs correct:
  labels advance at least one hop per round, so any fixpoint has
  per-component constant labels equal to the component minimum).
* the new ball is the ``s`` smallest distinct ids among the old ball,
  the pulled balls, and the flooded neighbor labels.  Balls only ever
  improve (lexicographically), so "no ball changed anywhere" is a sound
  fixpoint test; it is aggregated as a 1-bit OR at machine M1 and
  broadcast back, exactly like the Boruvka termination check.

Cost accounting — every doubling round charges the ledger two steps:

* ``logdiam:exchange-<t>``: each machine ships, once per destination
  machine that pulls it, every hosted ball (``|B(u)|`` ids) plus one
  label per input-graph incidence crossing machines.  Rounds follow from
  the k x k load matrix exactly like every other bulk step, so faults,
  partition skew and churn epochs compose for free.
* ``logdiam:termination-<t>``: the O(1) fixpoint check.

On a path (diameter D) with an unbounded space bound the pull radius
doubles every round, so the fixpoint lands after ``ceil(log2 D) + O(1)``
doubling rounds — the property the test suite pins.  The price is ball
volume: dense or truncated inputs ship Theta(s) ids per vertex per
round, which is where Theorem 1's sketches win the crossover back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.util.bits import bits_for_id

__all__ = ["DoublingStats", "LogDiamResult", "logdiam_connectivity"]


@dataclass(frozen=True)
class DoublingStats:
    """Diagnostics of one doubling round (the logdiam analogue of PhaseStats)."""

    iteration: int
    balls_changed: int
    labels_changed: int
    max_ball: int
    shortcut_pairs: int
    rounds: int


@dataclass
class LogDiamResult:
    """Output of a neighborhood-doubling connectivity run.

    Attributes
    ----------
    labels:
        ``int64[n]``; component minimum per vertex once ``converged``.
    n_components:
        Number of distinct labels.
    rounds:
        Total simulated k-machine rounds charged by this run.
    doubling_rounds:
        Doubling iterations executed (including the final no-change
        detection round) — the quantity bounded by ``ceil(log2 D) + O(1)``
        on untruncated runs.
    converged:
        True iff the ball fixpoint was reached within the budget.
    space_bound:
        The effective per-vertex ball bound ``s`` used (``n`` when the
        configured bound was ``None`` or larger than ``n``).
    phase_stats:
        Per-iteration :class:`DoublingStats`.
    """

    labels: np.ndarray
    n_components: int
    rounds: int
    doubling_rounds: int
    converged: bool
    space_bound: int
    phase_stats: list[DoublingStats] = field(default_factory=list)


def _s_smallest_per_owner(
    owners: np.ndarray, vals: np.ndarray, n_owners: int, s: int, universe: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct values per owner, keeping only each owner's ``s`` smallest.

    Returns ``(vals, ptr)`` in CSR form: owner ``v``'s (sorted ascending)
    kept values live at ``vals[ptr[v]:ptr[v + 1]]``.  Owners with no
    candidate get an empty segment.  ``universe`` bounds the value range
    (exclusive); it defaults to ``n_owners``.
    """
    u = n_owners if universe is None else universe
    key = owners * np.int64(u) + vals
    uniq = np.unique(key)
    o = uniq // u
    v = uniq - o * np.int64(u)
    ptr_full = np.searchsorted(o, np.arange(n_owners + 1, dtype=np.int64))
    rank = np.arange(uniq.size, dtype=np.int64) - ptr_full[o]
    keep = rank < s
    counts = np.minimum(ptr_full[1:] - ptr_full[:-1], s)
    ptr = np.zeros(n_owners + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return v[keep], ptr


def _ball_groups(
    ball_vals: np.ndarray, ball_ptr: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Group vertices with *identical* balls; returns ``(gid, rep, m)``.

    ``gid[v]`` is the group of ``v``'s ball, ``rep[g]`` one vertex holding
    it, ``m`` the group count.  Exact (padded-row ``np.unique``), not a
    hash: collapsing two distinct balls would corrupt the dynamics.  Late
    iterations — where every vertex of a component holds the same
    saturated ball — collapse to one group, so the pulled-union work drops
    from Theta(n * s^2) to the deduplicated volume.
    """
    sizes = ball_ptr[1:] - ball_ptr[:-1]
    width = int(sizes.max()) if sizes.size else 0
    padded = np.full((n, max(width, 1)), n, dtype=np.int64)
    if ball_vals.size:
        owner = np.repeat(np.arange(n, dtype=np.int64), sizes)
        starts = ball_ptr[:-1]
        col = np.arange(ball_vals.size, dtype=np.int64) - starts[owner]
        padded[owner, col] = ball_vals
    _, gid = np.unique(padded, axis=0, return_inverse=True)
    gid = gid.ravel().astype(np.int64)
    m = int(gid.max()) + 1 if gid.size else 0
    rep = np.zeros(m, dtype=np.int64)
    rep[gid[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    return gid, rep, m


def _gather_segments(
    ball_vals: np.ndarray, ball_ptr: np.ndarray, which: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the ball segments of ``which``; returns (values, segment ids).

    ``segment ids`` index into ``which`` (i.e. output slot j came from
    ``which[segment_ids[j]]``'s ball).
    """
    lens = ball_ptr[which + 1] - ball_ptr[which]
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    seg = np.repeat(np.arange(which.size, dtype=np.int64), lens)
    starts = np.zeros(which.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    pos = np.arange(total, dtype=np.int64) - starts[seg]
    return ball_vals[ball_ptr[which][seg] + pos], seg


def _changed_mask(
    old_vals: np.ndarray,
    old_ptr: np.ndarray,
    new_vals: np.ndarray,
    new_ptr: np.ndarray,
    n: int,
) -> np.ndarray:
    """Per-vertex "did this ball change?" between two CSR ball states."""
    old_sizes = old_ptr[1:] - old_ptr[:-1]
    new_sizes = new_ptr[1:] - new_ptr[:-1]
    changed = old_sizes != new_sizes
    same = np.nonzero(~changed)[0]
    if same.size:
        old_flat, seg = _gather_segments(old_vals, old_ptr, same)
        new_flat, _ = _gather_segments(new_vals, new_ptr, same)
        neq = old_flat != new_flat
        if neq.any():
            changed[same[np.unique(seg[neq])]] = True
    return changed


def _charge_exchange(
    cluster: KMachineCluster,
    t: int,
    pull_u: np.ndarray,
    pull_home: np.ndarray,
    sizes: np.ndarray,
    id_bits: int,
    flood_u: np.ndarray,
    flood_dst: np.ndarray,
) -> None:
    """Price one doubling round's exchange + fixpoint check on the ledger.

    Ball shipping is deduplicated per (source vertex, pulling machine):
    ``pull_u[i]``'s ball travels once to ``pull_home[i]``'s machine no
    matter how many of its vertices pull it.  The flood pairs are the
    loop-invariant (vertex, neighbor-hosting machine) incidences.
    """
    k = cluster.k
    home = cluster.partition.home
    step = CommStep(cluster.ledger, f"logdiam:exchange-{t}")
    if pull_u.size:
        skey = np.unique(pull_u * np.int64(k) + pull_home)
        su = skey // k
        sdst = skey - su * np.int64(k)
        step.add(home[su], sdst, sizes[su] * id_bits)
    if flood_u.size:
        step.add(home[flood_u], flood_dst, id_bits)
    step.deliver()
    others = np.arange(1, k, dtype=np.int64)
    up = CommStep(cluster.ledger, f"logdiam:termination-{t}")
    up.add(others, 0, 1)
    up.deliver()
    down = CommStep(cluster.ledger, f"logdiam:termination-bcast-{t}")
    down.add(0, others, 1)
    down.deliver()


def _flood_pairs(cluster: KMachineCluster) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated (vertex, neighbor-hosting machine) flooding incidences."""
    k = cluster.k
    home = cluster.partition.home
    if not cluster.inc_owner.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    fkey = np.unique(cluster.inc_owner * np.int64(k) + home[cluster.inc_other])
    flood_u = fkey // k
    return flood_u, fkey - flood_u * np.int64(k)


def _logdiam_dense(
    cluster: KMachineCluster, budget: int
) -> tuple[np.ndarray, int, bool, list[DoublingStats]]:
    """The unbounded (``s = n``) regime as boolean reachability squaring.

    With no truncation the ball union *is* the boolean matrix product
    ``KNOWS @ KNOWS`` — one BLAS float32 matmul per doubling round — so
    the simulation runs at hardware speed instead of materializing
    Theta(n * s^2) candidate multisets.  Semantics and ledger pricing are
    identical to the CSR path; only the local (free) compute changes.
    Memory is Theta(n^2) bits, fine for every simulated scale.
    """
    n, k = cluster.n, cluster.k
    home = cluster.partition.home
    id_bits = bits_for_id(max(n, 2))
    g = cluster.graph
    deg = g.indptr[1:] - g.indptr[:-1]
    self_ids = np.arange(n, dtype=np.int64)

    bits = np.zeros((n, n), dtype=bool)
    bits[self_ids, self_ids] = True
    bits[np.repeat(self_ids, deg), g.indices] = True
    labels = bits.argmax(axis=1).astype(np.int64)
    flood_u, flood_dst = _flood_pairs(cluster)

    stats: list[DoublingStats] = []
    converged = False
    iterations = 0
    for t in range(1, budget + 1):
        iterations = t
        rounds_before = cluster.ledger.total_rounds
        sizes = bits.sum(axis=1, dtype=np.int64)
        # Pricing pulls: u's ball travels to every machine hosting a v
        # with u in B(v) — column-wise machine aggregation of the matrix.
        pulled_by = np.zeros((k, n), dtype=bool)
        for i in range(k):
            rows = bits[home == i]
            if rows.size:
                pulled_by[i] = rows.any(axis=0)
        dst_mach, pull_cols = np.nonzero(pulled_by)
        _charge_exchange(
            cluster, t, pull_cols.astype(np.int64), dst_mach.astype(np.int64),
            sizes, id_bits, flood_u, flood_dst,
        )
        f = bits.astype(np.float32)
        new_bits = (f @ f) > 0.5
        new_bits |= bits
        if flood_u.size:
            new_bits[cluster.inc_owner, labels[cluster.inc_other]] = True
        changed = (new_bits != bits).any(axis=1)
        new_labels = new_bits.argmax(axis=1).astype(np.int64)
        stats.append(
            DoublingStats(
                iteration=t,
                balls_changed=int(changed.sum()),
                labels_changed=int((new_labels != labels).sum()),
                max_ball=int(sizes.max()) if sizes.size else 0,
                shortcut_pairs=int(sizes.sum()),
                rounds=cluster.ledger.total_rounds - rounds_before,
            )
        )
        bits, labels = new_bits, new_labels
        if not changed.any():
            converged = True
            break
    return labels, iterations, converged, stats


def logdiam_connectivity(
    cluster: KMachineCluster,
    seed: int = 0,
    *,
    space_bound: int | None = None,
    doubling_budget: int | None = None,
) -> LogDiamResult:
    """Run neighborhood-doubling connectivity on ``cluster``; charges its ledger.

    This is the implementation behind the ``"connectivity_logdiam"``
    registry entry; prefer ``Session.run("connectivity_logdiam", ...)``
    for new code.  The algorithm is deterministic — ``seed`` is accepted
    for the uniform core signature (and affects the *cluster partition*
    upstream) but draws no randomness here.

    Parameters
    ----------
    cluster:
        The distributed input (graph + partition + topology + ledger).
    seed:
        Unused by the doubling dynamics (kept for signature uniformity).
    space_bound:
        Per-vertex ball bound ``s`` (the MPC machine-space knob);
        ``None`` = unbounded (``s = n``), the pure graph-exponentiation
        regime.
    doubling_budget:
        Iteration budget; ``None`` runs to the ball fixpoint, which the
        flooding floor guarantees within ``n + 1`` iterations.
    """
    del seed  # deterministic; see docstring
    n = cluster.n
    if space_bound is not None and space_bound < 1:
        raise ValueError(f"space_bound must be >= 1 or None, got {space_bound}")
    if doubling_budget is not None and doubling_budget < 1:
        raise ValueError(f"doubling_budget must be >= 1 or None, got {doubling_budget}")
    s = n if space_bound is None else min(int(space_bound), n)
    budget = int(doubling_budget) if doubling_budget is not None else n + 1
    if s >= n:
        labels, iterations, converged, stats = _logdiam_dense(cluster, budget)
    else:
        labels, iterations, converged, stats = _logdiam_sparse(cluster, s, budget)
    return LogDiamResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        rounds=cluster.ledger.total_rounds,
        doubling_rounds=iterations,
        converged=converged,
        space_bound=s,
        phase_stats=stats,
    )


def _logdiam_sparse(
    cluster: KMachineCluster, s: int, budget: int
) -> tuple[np.ndarray, int, bool, list[DoublingStats]]:
    """The truncated (``s < n``) regime over CSR ball segments.

    Per-iteration work is O(n * s^2)-ish; the pulled union is realized
    once per *distinct* (ball, pulled ball) pair and broadcast to every
    holder — pure dedup, same semantics, and it collapses the saturated
    late iterations where whole components share one ball.
    """
    n = cluster.n
    home = cluster.partition.home
    id_bits = bits_for_id(max(n, 2))
    g = cluster.graph

    # Initial balls: the s smallest of {v} ∪ N(v) — machine-local knowledge.
    deg = g.indptr[1:] - g.indptr[:-1]
    self_ids = np.arange(n, dtype=np.int64)
    ball_vals, ball_ptr = _s_smallest_per_owner(
        np.concatenate([np.repeat(self_ids, deg), self_ids]),
        np.concatenate([g.indices, self_ids]),
        n,
        s,
    )
    labels = ball_vals[ball_ptr[:-1]].copy()
    flood_u, flood_dst = _flood_pairs(cluster)

    stats: list[DoublingStats] = []
    converged = False
    iterations = 0
    for t in range(1, budget + 1):
        iterations = t
        rounds_before = cluster.ledger.total_rounds
        sizes = ball_ptr[1:] - ball_ptr[:-1]
        # Directed pull pairs: v pulls B(u) for every u in B(v).
        pull_v = np.repeat(self_ids, sizes)
        pull_u = ball_vals
        _charge_exchange(
            cluster, t, pull_u, home[pull_v], sizes, id_bits, flood_u, flood_dst
        )
        # -- local update (free computation): union + s-smallest ----------
        gid, rep, m = _ball_groups(ball_vals, ball_ptr, n)
        gh = np.unique(gid[pull_v] * np.int64(m) + gid[pull_u])
        gg = gh // m
        hh = gh - gg * np.int64(m)
        pool_raw, pseg = _gather_segments(ball_vals, ball_ptr, rep[hh])
        pool_vals, pool_ptr = _s_smallest_per_owner(gg[pseg], pool_raw, m, s, universe=n)
        bcast_vals, bseg = _gather_segments(pool_vals, pool_ptr, gid)
        cand_owner = np.concatenate([bseg, pull_v, cluster.inc_owner])
        cand_val = np.concatenate([bcast_vals, ball_vals, labels[cluster.inc_other]])
        new_vals, new_ptr = _s_smallest_per_owner(cand_owner, cand_val, n, s)
        new_labels = new_vals[new_ptr[:-1]]
        changed = _changed_mask(ball_vals, ball_ptr, new_vals, new_ptr, n)
        stats.append(
            DoublingStats(
                iteration=t,
                balls_changed=int(changed.sum()),
                labels_changed=int((new_labels != labels).sum()),
                max_ball=int(sizes.max()) if sizes.size else 0,
                shortcut_pairs=int(pull_u.size),
                rounds=cluster.ledger.total_rounds - rounds_before,
            )
        )
        ball_vals, ball_ptr, labels = new_vals, new_ptr, new_labels
        if not changed.any():
            converged = True
            break
    return labels, iterations, converged, stats
