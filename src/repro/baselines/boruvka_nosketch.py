"""Boruvka without sketches or proxies — the O~(n/k) GHS-style baseline.

Section 1.2 and Section 2 attribute the Omega~(n/k) behaviour of classical
approaches (GHS [14] under the Conversion Theorem) to two costs the
sketch-based algorithm avoids:

1. **edge-status checking** — without sketches, finding an outgoing edge
   requires knowing, per incident edge, whether its other endpoint is in
   the same component, so label changes must be pushed across *every*
   cross-machine edge each phase (Theta(m) messages);
2. **leader-centric aggregation and announcement** — without random
   proxies and part-level relabel broadcasts, merges are coordinated at
   the home machine of each component's leader vertex, and merge results
   are announced to all machines (a machine cannot know which other
   machines hold parts of its component without the proxy machinery).

The per-phase announcement alone moves Theta(C log n) bits out of the
leaders' machines over k-1 links each — Theta~(n/k) rounds in the first
phase — which is exactly the barrier the paper breaks.  DRR ranks are kept
(shared randomness) so that this baseline isolates the sketch+proxy
contribution, not the DRR contribution (see ``bench_ablation_drr`` for
that one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.core.drr import build_drr_forest
from repro.core.labels import PartIndex, initial_labels
from repro.core.outgoing import OutgoingSelection
from repro.cluster.shared_random import SharedRandomness
from repro.util.bits import bits_for_id

__all__ = ["NoSketchResult", "boruvka_nosketch"]


@dataclass(frozen=True)
class NoSketchResult:
    """Output of the no-sketch Boruvka baseline."""

    labels: np.ndarray
    n_components: int
    rounds: int
    phases: int
    total_bits: int
    edges_u: np.ndarray
    edges_v: np.ndarray
    total_weight: float


def boruvka_nosketch(
    cluster: KMachineCluster, seed: int = 0, max_phases: int | None = None
) -> NoSketchResult:
    """Run no-sketch Boruvka (connectivity + MSF); charge the cluster ledger.

    On weighted graphs the selected edges form a minimum spanning forest
    (each component picks its true MWOE — no sampling error); on unweighted
    graphs any outgoing edge is picked.  Either way the communication
    pattern, not the answer, is the point of this baseline.
    """
    n, k = cluster.n, cluster.k
    g = cluster.graph
    labels = initial_labels(n)
    shared = SharedRandomness(master_seed=seed, n=n, k=k)
    label_bits = bits_for_id(max(n, 2))
    edge_bits = 2 * label_bits + 64
    inc_owner, inc_other = cluster.inc_owner, cluster.inc_other
    src_m = cluster.inc_machine
    dst_m = cluster.partition.home[inc_other]
    cross = src_m != dst_m
    changed = np.ones(n, dtype=bool)
    budget = max_phases if max_phases is not None else n
    bits_before = cluster.ledger.total_bits
    out_u: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    phases = 0
    for phase in range(1, budget + 1):
        phases = phase
        # 1. Edge-status sync: every changed vertex pushes its new label
        # across every incident edge (the Theta(m) cost sketches avoid).
        # Incidences are stored in both directions, so after the push each
        # owner's machine holds the current label of every neighbor.
        sel = changed[inc_owner]
        if sel.any():
            step = CommStep(cluster.ledger, f"nosketch-sync:phase-{phase}")
            step.add(src_m[sel & cross], dst_m[sel & cross], label_bits)
            step.deliver()
        owner_view = labels[inc_other]  # the post-sync local view
        # 2. Per (machine, component) part: local MWOE among outgoing edges.
        parts = PartIndex.build(labels, cluster.partition)
        inc_part = parts.part_of_vertex[inc_owner]
        outgoing = owner_view != labels[inc_owner]
        if not outgoing.any():
            break
        # Select min-weight outgoing incidence per part (stable lexsort).
        cand = np.nonzero(outgoing)[0]
        order = np.lexsort((cluster.inc_weight[cand], inc_part[cand]))
        cand_sorted = cand[order]
        part_sorted = inc_part[cand_sorted]
        first = np.ones(cand_sorted.size, dtype=bool)
        first[1:] = part_sorted[1:] != part_sorted[:-1]
        best_inc = cand_sorted[first]  # one incidence per part with outgoing
        best_part = inc_part[best_inc]
        # 3. Candidates to the leader's home machine (leader = label vertex).
        leader_home = cluster.partition.home[parts.part_label[best_part]]
        step = CommStep(cluster.ledger, f"nosketch-candidates:phase-{phase}")
        step.add(parts.part_machine[best_part], leader_home, edge_bits)
        step.deliver()
        # Leader-side global MWOE per component.
        comp_of_best = parts.comp_of_part[best_part]
        c = parts.n_components
        order2 = np.lexsort((cluster.inc_weight[best_inc], comp_of_best))
        bi = best_inc[order2]
        bc = comp_of_best[order2]
        first2 = np.ones(bi.size, dtype=bool)
        first2[1:] = bc[1:] != bc[:-1]
        mwoe_inc = bi[first2]
        mwoe_comp = bc[first2]
        found = np.zeros(c, dtype=bool)
        found[mwoe_comp] = True
        internal = np.full(c, -1, dtype=np.int64)
        foreign = np.full(c, -1, dtype=np.int64)
        nbr = np.full(c, -1, dtype=np.int64)
        internal[mwoe_comp] = inc_owner[mwoe_inc]
        foreign[mwoe_comp] = inc_other[mwoe_inc]
        nbr[mwoe_comp] = labels[inc_other[mwoe_inc]]
        weight = np.full(c, np.nan, dtype=np.float64)
        weight[mwoe_comp] = cluster.inc_weight[mwoe_inc]
        selection = OutgoingSelection(
            parts=parts,
            comp_proxy=cluster.partition.home[parts.comp_labels],  # leader homes
            sketch_nonzero=found,
            found=found,
            slot=np.full(c, -1, dtype=np.int64),
            internal_vertex=internal,
            foreign_vertex=foreign,
            neighbor_label=nbr,
            edge_weight=weight,
        )
        forest = build_drr_forest(parts, selection, shared.rank_stream(phase))
        kids = np.nonzero(forest.parent >= 0)[0]
        if kids.size == 0:
            break
        out_u.append(internal[kids])
        out_v.append(foreign[kids])
        # 4. Merge announcement: each merging leader broadcasts
        # (old_label -> new_label) to ALL machines — the Theta~(n/k) step.
        ann = CommStep(cluster.ledger, f"nosketch-announce:phase-{phase}")
        leader_homes = cluster.partition.home[parts.comp_labels[kids]]
        for mid in range(k):
            ann.add(leader_homes, mid, 2 * label_bits)
        ann.deliver()
        # Apply the merges locally on every machine.
        old = forest.comp_labels[kids]
        new = forest.parent_label[kids]
        # Resolve chains within the phase: follow the translation until a
        # fixpoint (every machine holds the full table, so this is local).
        table = dict(zip(old.tolist(), new.tolist()))
        resolved = {}
        for o in table:
            t = table[o]
            seen = {o}
            while t in table and t not in seen:
                seen.add(t)
                t = table[t]
            resolved[o] = t
        old_arr = np.fromiter(resolved.keys(), dtype=np.int64)
        new_arr = np.fromiter(resolved.values(), dtype=np.int64)
        order3 = np.argsort(old_arr)
        old_s, new_s = old_arr[order3], new_arr[order3]
        pos = np.searchsorted(old_s, labels)
        pos_c = np.clip(pos, 0, old_s.size - 1)
        hit = old_s[pos_c] == labels
        new_labels = labels.copy()
        new_labels[hit] = new_s[pos_c[hit]]
        changed = new_labels != labels
        labels = new_labels
    eu = np.concatenate(out_u) if out_u else np.empty(0, dtype=np.int64)
    ev = np.concatenate(out_v) if out_v else np.empty(0, dtype=np.int64)
    w = 0.0
    if eu.size:
        key = g.edges_u * np.int64(n) + g.edges_v
        q = np.minimum(eu, ev) * np.int64(n) + np.maximum(eu, ev)
        pos = np.clip(np.searchsorted(key, q), 0, key.size - 1)
        w = float(g.weights[pos].sum())
    return NoSketchResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        rounds=cluster.ledger.total_rounds,
        phases=phases,
        total_bits=cluster.ledger.total_bits - bits_before,
        edges_u=eu,
        edges_v=ev,
        total_weight=w,
    )
