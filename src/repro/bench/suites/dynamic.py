"""Dynamic-update benchmarks: amortized batch cost vs recompute-from-scratch.

The claim that justifies maintaining state at all (DESIGN.md §11): once
the Theorem-2 structure is built, applying a batch of edge updates costs
O(1)-ish rounds, strictly below re-running the full build on the mutated
graph.  ``dynamic_update_cost`` pins that gap per worst-case family and
per batch kind:

* ``build_rounds`` — the initial distributed Theorem-2 build;
* ``update_rounds`` / ``amortized_update_rounds`` — total and per-batch
  cost of replaying the plan against the maintained forest;
* ``recompute_rounds`` — a fresh full build on the *final* edge set, the
  cost every batch avoids paying;
* ``correct`` — the maintained answer equals that fresh recompute
  (weight and component count), the differential-suite invariant at
  benchmark scale.

A drift in the update pricing, the batch generators, or the maintained
structure itself lands in these gated metrics and fails CI.
"""

from __future__ import annotations

import math

from repro.bench.registry import register_benchmark
from repro.bench.runner import metrics_from_report
from repro.core.dynamic import MaintainedForest, generate_batch
from repro.graphs import generators
from repro.runtime.config import ClusterConfig, RunConfig
from repro.runtime.session import Session
from repro.scenarios.updates import UpdateBatch, UpdatePlan, batch_seed
from repro.util.rng import derive_seed

__all__: list[str] = []


def _input_graph(n: int, seed: int, family: str):
    """The benchmark input at size ``n``, with unique weights attached."""
    gseed = derive_seed(seed, n, 0x5CE)
    if family == "gnm":
        g = generators.gnm_random(n, 3 * n, seed=gseed)
    else:
        g = generators.worst_case_graph(family, n, seed=gseed)
    if not g.weighted:
        g = generators.with_unique_weights(g, seed=gseed)
    return g


#: Update plans of one batch kind each, shared by both tiers: the benign
#: mixed stream, the adversarial all-tree-deletions stream (a replacement
#: search per update), and churn concentrated on one hot component.
_UPDATE_PLANS = {
    "mixed": UpdatePlan(
        batches=tuple(UpdateBatch(kind="mix", size=24, insert_fraction=0.5) for _ in range(4))
    ),
    "tree_delete": UpdatePlan(
        batches=tuple(UpdateBatch(kind="tree_delete", size=12) for _ in range(4))
    ),
    "hot_component": UpdatePlan(
        batches=tuple(
            UpdateBatch(kind="hot_component", size=16, insert_fraction=0.6) for _ in range(4)
        )
    ),
}

_FAMILIES = ("gnm", "lollipop", "disjoint_cliques")


@register_benchmark(
    "dynamic_update_cost",
    title="Dynamic MST: amortized batch-update rounds vs recompute-from-scratch",
    group="scenario",
    cells=[
        {"n": 2048, "k": 8, "family": f, "plan": p} for f in _FAMILIES for p in _UPDATE_PLANS
    ],
    quick_cells=[
        {"n": 256, "k": 4, "family": "gnm", "plan": p} for p in _UPDATE_PLANS
    ]
    + [{"n": 256, "k": 4, "family": "lollipop", "plan": "mixed"}],
    seed=7,
)
def _update_cost(cell: dict, seed: int) -> dict:
    n, k = int(cell["n"]), int(cell["k"])
    family, plan_name = str(cell["family"]), str(cell["plan"])
    plan = _UPDATE_PLANS[plan_name]
    g = _input_graph(n, seed, family)
    config = RunConfig(seed=seed, cluster=ClusterConfig(k=k), updates=plan)
    report = Session(g, config=config).run("mst_dynamic")
    res = report.result

    # Recompute oracle: replay the identical stream sequentially to obtain
    # the final edge set, then pay for a fresh full Theorem-2 build on it —
    # the from-scratch cost every maintained batch amortizes against.
    state = MaintainedForest(g)
    base = plan.base_seed(seed)
    for i, spec in enumerate(plan.batches):
        generate_batch(state, spec, batch_seed(base, i))
    re_report = Session(
        state.as_graph(), config=RunConfig(seed=seed, cluster=ClusterConfig(k=k))
    ).run("mst")
    # Relative tolerance: totals reach ~1e8 on the big families, where one
    # float64 ulp (~3e-8) already exceeds any absolute 1e-9 cutoff; the
    # two sides sum the same weights in different orders.
    correct = (
        math.isclose(
            res["total_weight"], re_report.result["total_weight"], rel_tol=1e-9, abs_tol=1e-9
        )
        and res["n_components"] == re_report.result["n_components"]
    )
    n_batches = len(plan.batches)
    return metrics_from_report(
        report,
        build_rounds=int(res["build_rounds"]),
        update_rounds=int(res["update_rounds"]),
        amortized_update_rounds=res["update_rounds"] / n_batches,
        recompute_rounds=int(re_report.rounds),
        updates_applied=int(res["updates_applied"]),
        correct=correct,
    )
