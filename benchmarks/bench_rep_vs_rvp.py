"""EXP REP — Section 1.3: Theta~(n/k) in REP vs Theta~(n/k^2) in RVP.

Thin wrapper over the registered ``rep_vs_rvp`` grid (see
``repro.bench.suites.baselines``): under the random *edge* partition the
tight bound is Theta~(n/k) (the footnote-5 algorithm pays a Theta~(n/k)
reroute), while the random *vertex* partition admits Theta~(n/k^2).  Both
run on the same graphs; the REP cost separates into reroute +
RVP-algorithm components.  The grid reduces the bandwidth multiplier so
the reroute's n/k term is visible at simulatable n.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import report, run_registered
from repro.analysis import fit_power_law, format_table


def test_rep_vs_rvp_scaling(benchmark):
    result = run_registered(benchmark, "rep_vs_rvp")
    assert all(c.metrics["agree"] for c in result.cells), "component counts must agree"
    rows = [
        (
            c.params["n"],
            c.metrics["rvp_rounds"],
            c.metrics["rep_rounds"],
            c.metrics["reroute_rounds"],
        )
        for c in result.cells
    ]
    k = result.cells[0].params["k"]
    bw = result.cells[0].params["bandwidth_multiplier"]
    ns_f = np.array([r[0] for r in rows], dtype=float)
    reroute = np.array([max(r[3], 1) for r in rows], dtype=float)
    fit_reroute = fit_power_law(ns_f, reroute)
    table = format_table(
        ["n", "RVP rounds", "REP rounds", "REP reroute rounds"],
        rows,
        title=f"Section 1.3 - RVP vs REP connectivity (k={k}, B multiplier={bw})",
    )
    table += (
        f"\nfit: reroute ~ n^{fit_reroute.exponent:.2f};"
        " paper: the REP->RVP conversion costs Theta~(n/k) (linear in n at fixed k)"
    )
    report("REP_vs_RVP", table)
    assert fit_reroute.exponent > 0.7, "reroute must scale ~ linearly in n"
    # Every REP run pays the reroute on top of the RVP algorithm.
    for _, rvp_r, rep_r, rr in rows:
        assert rep_r > rr
