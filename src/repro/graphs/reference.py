"""Sequential reference algorithms (ground truth for tests and benchmarks).

Every distributed algorithm in :mod:`repro.core` is validated against these
single-machine implementations: connected components via union-find,
Kruskal/Prim MST, BFS-based diameter and bipartiteness, Stoer-Wagner exact
min-cut, and the path/cycle predicates used by the verification problems of
Theorem 4.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.unionfind import UnionFind

__all__ = [
    "bfs_distances",
    "connected_components",
    "count_components",
    "diameter",
    "edge_on_all_paths",
    "gather_neighbors",
    "has_cycle",
    "is_bipartite",
    "is_connected",
    "kruskal_mst",
    "mst_weight",
    "prim_mst",
    "st_connected",
    "stoer_wagner_mincut",
]


def connected_components(g: Graph) -> np.ndarray:
    """Component label per vertex, canonicalized to the component's min vertex id.

    Canonical labels make results directly comparable across algorithms
    (the distributed result exposes the same normalization via
    ``ConnectivityResult.canonical()``).
    """
    uf = UnionFind(g.n)
    for u, v in zip(g.edges_u, g.edges_v):
        uf.union(int(u), int(v))
    roots = uf.labels()
    uniq, inv = np.unique(roots, return_inverse=True)
    mins = np.full(uniq.size, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, inv, np.arange(g.n, dtype=np.int64))
    return mins[inv]


def count_components(g: Graph) -> int:
    """Number of connected components."""
    uf = UnionFind(g.n)
    for u, v in zip(g.edges_u, g.edges_v):
        uf.union(int(u), int(v))
    return uf.n_components


def is_connected(g: Graph) -> bool:
    """True iff the graph has exactly one connected component."""
    return count_components(g) == 1


def st_connected(g: Graph, s: int, t: int) -> bool:
    """True iff ``s`` and ``t`` lie in the same component."""
    labels = connected_components(g)
    return bool(labels[s] == labels[t])


def gather_neighbors(g: Graph, frontier: np.ndarray) -> np.ndarray:
    """All neighbors of the frontier vertices, concatenated (with repeats).

    Vectorized CSR gather: builds a flat index
    ``[indptr[v] .. indptr[v+1]) for v in frontier`` without a Python loop
    per vertex.
    """
    starts = g.indptr[frontier]
    counts = (g.indptr[frontier + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offsets[i] = position in output where frontier[i]'s neighbors begin.
    offsets = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    flat = np.arange(total, dtype=np.int64)
    # For output slot j belonging to frontier vertex i:
    #   index = starts[i] + (j - offsets[i])
    owner = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
    idx = starts[owner] + (flat - offsets[owner])
    return g.indices[idx]


def bfs_distances(g: Graph, source: int) -> np.ndarray:
    """BFS hop distances from ``source`` (-1 for unreachable)."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nbrs = gather_neighbors(g, frontier)
        if nbrs.size == 0:
            break
        nxt = np.unique(nbrs)
        nxt = nxt[dist[nxt] < 0]
        dist[nxt] = d
        frontier = nxt
    return dist


def diameter(g: Graph) -> int:
    """Exact diameter via all-sources BFS (use on small graphs only).

    Raises ``ValueError`` on disconnected graphs.
    """
    best = 0
    for s in range(g.n):
        d = bfs_distances(g, s)
        if np.any(d < 0):
            raise ValueError("diameter undefined: graph is disconnected")
        best = max(best, int(d.max()))
    return best


def has_cycle(g: Graph) -> bool:
    """True iff the graph contains any cycle (m > n - #components)."""
    return g.m > g.n - count_components(g)


def is_bipartite(g: Graph) -> bool:
    """Two-coloring test via BFS over all components."""
    color = np.full(g.n, -1, dtype=np.int64)
    for start in range(g.n):
        if color[start] >= 0:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            v = stack.pop()
            cv = color[v]
            for w in g.neighbors(v):
                w = int(w)
                if color[w] < 0:
                    color[w] = 1 - cv
                    stack.append(w)
                elif color[w] == cv:
                    return False
    return True


def edge_on_all_paths(g: Graph, eid: int, u: int, v: int) -> bool:
    """True iff edge ``eid`` lies on every u-v path.

    Per Section 3.3: e lies on all paths between u and v iff u and v are
    disconnected in G minus e (assuming they are connected in G).
    """
    return not st_connected(g.without_edge(eid), u, v)


def kruskal_mst(g: Graph) -> np.ndarray:
    """Edge ids of a minimum spanning forest (Kruskal).

    With unique weights the MSF is unique, enabling exact comparisons.
    """
    order = np.argsort(g.weights, kind="stable")
    uf = UnionFind(g.n)
    chosen: list[int] = []
    for eid in order:
        eid = int(eid)
        if uf.union(int(g.edges_u[eid]), int(g.edges_v[eid])):
            chosen.append(eid)
    return np.array(sorted(chosen), dtype=np.int64)


def prim_mst(g: Graph) -> np.ndarray:
    """Edge ids of a minimum spanning forest (Prim with a heap).

    Included as an independent cross-check of :func:`kruskal_mst`.
    """
    visited = np.zeros(g.n, dtype=bool)
    chosen: list[int] = []
    for root in range(g.n):
        if visited[root]:
            continue
        visited[root] = True
        heap: list[tuple[float, int, int]] = []
        for pos in range(int(g.indptr[root]), int(g.indptr[root + 1])):
            eid = int(g.edge_ids[pos])
            heapq.heappush(heap, (float(g.weights[eid]), eid, int(g.indices[pos])))
        while heap:
            w, eid, to = heapq.heappop(heap)
            if visited[to]:
                continue
            visited[to] = True
            chosen.append(eid)
            for pos in range(int(g.indptr[to]), int(g.indptr[to + 1])):
                nxt = int(g.indices[pos])
                if not visited[nxt]:
                    ne = int(g.edge_ids[pos])
                    heapq.heappush(heap, (float(g.weights[ne]), ne, nxt))
    return np.array(sorted(chosen), dtype=np.int64)


def mst_weight(g: Graph, edge_ids: np.ndarray | None = None) -> float:
    """Total weight of the given edges (or of the Kruskal MSF)."""
    ids = kruskal_mst(g) if edge_ids is None else np.asarray(edge_ids, dtype=np.int64)
    return float(g.weights[ids].sum())


def stoer_wagner_mincut(g: Graph) -> float:
    """Exact global min-cut weight (Stoer-Wagner).

    O(n^3)-ish dense implementation — ground truth for Theorem 3 tests on
    graphs up to a few hundred vertices.  Requires a connected graph.
    """
    n = g.n
    if n < 2:
        raise ValueError("min cut needs n >= 2")
    w = np.zeros((n, n), dtype=np.float64)
    for u, v, wt in zip(g.edges_u, g.edges_v, g.weights):
        w[u, v] += wt
        w[v, u] += wt
    active = list(range(n))
    best = np.inf
    merged_into = {i: [i] for i in range(n)}
    while len(active) > 1:
        # Maximum adjacency (minimum cut phase).
        a = [active[0]]
        in_a = {active[0]}
        weights_to_a = {v: w[active[0], v] for v in active if v != active[0]}
        while len(a) < len(active):
            nxt = max(weights_to_a, key=lambda x: weights_to_a[x])
            a.append(nxt)
            in_a.add(nxt)
            del weights_to_a[nxt]
            for v in weights_to_a:
                weights_to_a[v] += w[nxt, v]
        s, t = a[-2], a[-1]
        cut_of_phase = float(sum(w[t, v] for v in active if v != t))
        best = min(best, cut_of_phase)
        # Merge t into s.
        for v in active:
            if v not in (s, t):
                w[s, v] += w[t, v]
                w[v, s] = w[s, v]
        merged_into[s].extend(merged_into[t])
        active.remove(t)
    return best
