"""Wire protocol of the graph service: framed JSON + the typed run request.

Framing is deliberately minimal (and stdlib-only): every message in either
direction is one *frame* — a 4-byte big-endian unsigned length followed by
that many bytes of UTF-8 JSON encoding a single object.  Requests are one
frame each; responses are a *stream* of frames ending with one whose
``"final"`` field is true (``run`` answers with a single final frame,
``sweep`` streams one frame per grid point before its final summary), so a
client reads frames until ``final`` without knowing the op's shape.

:class:`RunRequest` is the unit of traffic the whole subsystem shares: the
server executes it, the load generator draws seeded mixes of it, and its
:meth:`~RunRequest.cluster_key` — the canonical *(graph family | scenario,
n, seed, k, partition scheme, epoch)* identity — is what in-flight
coalescing, key-affinity dispatch and the hit-rate accounting all key on.
The graph/config construction here mirrors ``Session.run``'s scenario path
byte-for-byte (same seed derivation, same overlay semantics), which is
what makes a served envelope identical to an uncoalesced local run —
pinned by ``tests/service/test_server.py``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cluster.partition import PARTITION_SCHEMES, PartitionConfig
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.runtime.config import ClusterConfig, RunConfig
from repro.util.rng import derive_seed

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RunRequest",
    "SERVICE_FAMILIES",
    "encode_frame",
    "read_frame",
    "write_frame",
]

#: Upper bound on one frame's JSON payload (a full RunReport envelope for a
#: large sweep cell is ~100 KiB; 32 MiB leaves room without letting a
#: corrupt length prefix allocate the machine away).
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Graph families a request may name directly (scenarios may add theirs).
SERVICE_FAMILIES = ("gnm", "path", "cycle", "star", "grid") + tuple(
    sorted(generators.WORST_CASE_FAMILIES)
)


class ProtocolError(ValueError):
    """A malformed frame or request; the connection is not recoverable."""


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: length prefix + compact sorted-key JSON."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(data)) + data


async def write_frame(writer: asyncio.StreamWriter, payload: Mapping[str, Any]) -> None:
    """Write one frame and drain (so back-pressure reaches the sender)."""
    writer.write(encode_frame(payload))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("truncated frame header") from None
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("truncated frame body") from None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


@dataclass(frozen=True)
class RunRequest:
    """One unit of service traffic (see module docstring).

    Attributes
    ----------
    algorithm:
        Runtime-registry name to execute (``repro list``).
    family:
        Input graph family (:data:`SERVICE_FAMILIES`); ``None`` means the
        scenario's family, falling back to benign ``gnm`` — exactly the
        precedence of ``Session.run(scenario=...)``.
    scenario:
        Optional registered scenario name; its partition / fault / churn
        axes overlay the request's config via ``Scenario.apply``.
    n / seed / k:
        Graph size, resolved run seed, and machine count.
    scheme:
        Partition scheme (:data:`~repro.cluster.partition.PARTITION_SCHEMES`);
        a scenario's non-default placement wins, matching ``Scenario.apply``.
    epoch:
        Partition epoch of the cluster build (DESIGN.md §8) — a first-class
        axis of the coalescing key, so traffic can model epoch-refreshed
        caches without new graphs.
    weighted:
        Attach unique edge weights to the input (default on, like
        :class:`~repro.scenarios.registry.Scenario`, so one cached graph
        serves weighted and unweighted algorithms alike); forced on when
        the algorithm requires weights.
    updates:
        Optional :class:`~repro.scenarios.updates.UpdatePlan` as its
        ``to_dict`` form — an edge-update stream to replay against a
        maintained structure (``mst_dynamic``).  Deliberately *not* part
        of :meth:`cluster_key`: the stream mutates maintained state, not
        the cluster build, so update traffic still coalesces onto the
        same cached cluster as static traffic for the same input.
    params:
        Algorithm-specific extras, merged into ``RunConfig.params``.
    corpus:
        Optional corpus entry id (``<family>/<hash>_<seed>``): the input
        comes memory-mapped from the service's shared
        :class:`~repro.corpus.manager.CorpusManager` instead of being
        generated per worker.  Mutually exclusive with ``family`` (the
        entry already pins family, params and graph seed); ``n``,
        ``seed`` and ``weighted`` keep their config roles but no longer
        shape the input.  Excluded from :meth:`to_dict` when unset, so
        committed envelopes predating the field stay byte-identical.
    """

    algorithm: str = "connectivity"
    family: str | None = None
    scenario: str | None = None
    n: int = 256
    seed: int = 0
    k: int = 4
    scheme: str = "uniform"
    epoch: int = 0
    weighted: bool = True
    updates: dict | None = None
    params: dict = field(default_factory=dict)
    corpus: str | None = None

    def validate(self) -> "RunRequest":
        """Raise :class:`ProtocolError` on the first invalid field."""
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ProtocolError(f"algorithm must be a non-empty string, got {self.algorithm!r}")
        if self.family is not None and self.family not in SERVICE_FAMILIES:
            raise ProtocolError(
                f"family must be one of {SERVICE_FAMILIES} or null, got {self.family!r}"
            )
        if self.scenario is not None and not isinstance(self.scenario, str):
            raise ProtocolError(f"scenario must be a string or null, got {self.scenario!r}")
        if not isinstance(self.n, int) or self.n < 4:
            raise ProtocolError(f"n must be an int >= 4, got {self.n!r}")
        if not isinstance(self.seed, int):
            raise ProtocolError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.k, int) or self.k < 2:
            raise ProtocolError(f"k must be an int >= 2, got {self.k!r}")
        if self.scheme not in PARTITION_SCHEMES:
            raise ProtocolError(
                f"scheme must be one of {PARTITION_SCHEMES}, got {self.scheme!r}"
            )
        if not isinstance(self.epoch, int) or self.epoch < 0:
            raise ProtocolError(f"epoch must be a non-negative int, got {self.epoch!r}")
        if self.updates is not None:
            if not isinstance(self.updates, dict):
                raise ProtocolError(
                    f"updates must be an object or null, got {type(self.updates).__name__}"
                )
            from repro.scenarios.updates import UpdatePlan

            try:
                UpdatePlan.from_dict(self.updates)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid update plan: {exc}") from None
        if not isinstance(self.params, dict):
            raise ProtocolError(f"params must be an object, got {type(self.params).__name__}")
        if self.corpus is not None:
            if not isinstance(self.corpus, str) or not self.corpus:
                raise ProtocolError(
                    f"corpus must be a non-empty string or null, got {self.corpus!r}"
                )
            if self.family is not None:
                raise ProtocolError(
                    "corpus and family are mutually exclusive: the corpus entry "
                    "already pins the input family"
                )
        return self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The request as JSON-ready data (inverse of :meth:`from_dict`).

        ``corpus`` is emitted only when set — committed envelopes from
        before the field exists must round-trip byte-identically.
        """
        out = {
            "algorithm": self.algorithm,
            "family": self.family,
            "scenario": self.scenario,
            "n": self.n,
            "seed": self.seed,
            "k": self.k,
            "scheme": self.scheme,
            "epoch": self.epoch,
            "weighted": self.weighted,
            "updates": None if self.updates is None else dict(self.updates),
            "params": dict(self.params),
        }
        if self.corpus is not None:
            out["corpus"] = self.corpus
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        d = dict(data)
        unknown = set(d) - {
            "algorithm", "family", "scenario", "n", "seed", "k",
            "scheme", "epoch", "weighted", "updates", "params", "corpus",
        }
        if unknown:
            raise ProtocolError(f"unknown request fields: {', '.join(sorted(unknown))}")
        for key in ("n", "seed", "k", "epoch"):
            if key in d and d[key] is not None:
                try:
                    d[key] = int(d[key])
                except (TypeError, ValueError):
                    raise ProtocolError(f"{key} must be an integer, got {d[key]!r}") from None
        if "weighted" in d:
            d["weighted"] = bool(d["weighted"])
        if d.get("params") is None:
            d.pop("params", None)
        return cls(**d).validate()

    # -- semantics (shared by server, loadgen and tests) -------------------

    def resolved_scenario(self):
        """The registered :class:`~repro.scenarios.registry.Scenario`, or None."""
        if self.scenario is None:
            return None
        from repro.scenarios.registry import get_scenario

        return get_scenario(self.scenario)

    def run_config(self) -> RunConfig:
        """The :class:`RunConfig` this request resolves to.

        Base config from the request fields, then the scenario overlay —
        the same composition ``Session.run(..., scenario=...)`` applies,
        so served envelopes carry identical config provenance.
        """
        updates = None
        if self.updates is not None:
            from repro.scenarios.updates import UpdatePlan

            updates = UpdatePlan.from_dict(self.updates)
        base = RunConfig(
            seed=self.seed,
            cluster=ClusterConfig(k=self.k, partition=PartitionConfig(scheme=self.scheme)),
            updates=updates,
            params=dict(self.params),
        ).validate()
        sc = self.resolved_scenario()
        return base if sc is None else sc.apply(base)

    def family_label(self) -> str:
        """The effective input family: a ``corpus`` entry wins over an
        explicit ``family``, which wins over the scenario's (mirroring
        ``--corpus`` > ``--graph`` > ``--scenario`` in the CLI)."""
        if self.corpus is not None:
            return f"corpus:{self.corpus}"
        if self.family is not None:
            return self.family
        if self.scenario is not None:
            return f"scenario:{self.scenario}"
        return "gnm"

    def effective_weighted(self) -> bool:
        """Whether the built graph carries weights (see :meth:`build_graph`).

        For a corpus request the stored entry decides; the flag here is
        advisory (the entry id inside :meth:`graph_key` already pins the
        exact arrays, weights included).
        """
        sc = self.resolved_scenario()
        if sc is not None and self.family is None and self.corpus is None:
            return bool(sc.weighted)
        return bool(self.weighted or _requires_weights(self.algorithm))

    def graph_key(self) -> str:
        """Canonical identity of the input graph this request needs."""
        return json.dumps(
            [self.family_label(), self.n, self.seed, self.effective_weighted()],
            separators=(",", ":"),
        )

    def cluster_key(self) -> str:
        """The coalescing key: (family|scenario, n, seed, k, scheme, epoch).

        Canonical JSON, so it is hashable, order-stable across processes
        (no ``PYTHONHASHSEED`` dependence) and safe to use for both
        key-affinity dispatch and deterministic hit-rate accounting.  The
        placement component is the *effective* partition section after the
        scenario overlay — two requests that resolve to the same placement
        genuinely share a cluster build.
        """
        partition = self.run_config().cluster.partition.to_dict()
        return json.dumps(
            [self.family_label(), self.n, self.seed, self.k, partition, self.epoch],
            sort_keys=True,
            separators=(",", ":"),
        )

    def build_graph(self, corpus=None) -> Graph:
        """Build this request's input graph (deterministic in the request).

        A ``corpus`` request loads its entry memory-mapped through the
        given :class:`~repro.corpus.manager.CorpusManager` (the service
        threads its shared manager here); the entry must already carry
        weights if the algorithm requires them — weights are part of the
        materialized input, not overlaid per request.  A scenario request
        delegates to ``Scenario.make_graph`` (so the envelope matches
        ``Session.run(scenario=...)`` byte-for-byte); a plain family uses
        the same ``derive_seed(seed, 0x5CE0)`` graph-seed derivation,
        making ``family="lollipop"`` identical to an ad-hoc
        ``Scenario(family="lollipop")``.
        """
        if self.corpus is not None:
            if corpus is None:
                from repro.corpus.manager import CorpusManager

                corpus = CorpusManager()
            try:
                g = corpus.load(self.corpus)
            except KeyError as exc:
                raise ProtocolError(str(exc)) from None
            # The request's `weighted` flag shapes *generated* inputs; a
            # corpus entry is immutable, so only a hard algorithm
            # requirement can reject it.
            if _requires_weights(self.algorithm) and not g.weighted:
                raise ProtocolError(
                    f"algorithm {self.algorithm!r} requires weights but corpus "
                    f"entry {self.corpus!r} is unweighted; materialize a "
                    "weighted=true cell instead"
                )
            return g
        sc = self.resolved_scenario()
        if sc is not None and self.family is None:
            return sc.make_graph(self.n, self.seed)
        gseed = derive_seed(self.seed, 0x5CE0)
        family = self.family or "gnm"
        if family == "gnm":
            g = generators.gnm_random(self.n, 3 * self.n, seed=gseed)
        elif family == "path":
            g = generators.path_graph(self.n)
        elif family == "cycle":
            g = generators.cycle_graph(self.n)
        elif family == "star":
            g = generators.star_graph(self.n)
        elif family == "grid":
            side = max(2, int(round(self.n**0.5)))
            g = generators.grid2d(side, side)
        else:
            g = generators.worst_case_graph(family, self.n, seed=gseed)
        needs_weights = self.weighted or _requires_weights(self.algorithm)
        if needs_weights and not g.weighted:
            g = generators.with_unique_weights(g, seed=gseed)
        return g


def _requires_weights(algorithm: str) -> bool:
    """Whether the registered algorithm needs edge weights (False if unknown)."""
    from repro.runtime.registry import get_algorithm

    try:
        return bool(get_algorithm(algorithm).requires_weights)
    except KeyError:
        return False
