"""Wire protocol: framing, request validation, and the coalescing keys."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.graphs import generators
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    RunRequest,
    encode_frame,
    read_frame,
)
from repro.util.rng import derive_seed


def _read(data: bytes):
    """Feed raw bytes to a StreamReader and read one frame from it."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


# -- framing ----------------------------------------------------------------


def test_frame_roundtrip():
    payload = {"op": "run", "id": 3, "request": RunRequest().to_dict()}
    assert _read(encode_frame(payload)) == payload


def test_frames_are_canonical_json():
    a = encode_frame({"b": 1, "a": 2})
    b = encode_frame({"a": 2, "b": 1})
    assert a == b  # sorted keys, compact separators


def test_clean_eof_returns_none():
    assert _read(b"") is None


def test_truncated_header_raises():
    with pytest.raises(ProtocolError, match="header"):
        _read(b"\x00\x00")


def test_truncated_body_raises():
    frame = encode_frame({"op": "ping"})
    with pytest.raises(ProtocolError, match="body"):
        _read(frame[:-2])


def test_oversize_length_rejected_before_allocation():
    with pytest.raises(ProtocolError, match="exceeds"):
        _read(struct.pack(">I", MAX_FRAME_BYTES + 1))


def test_invalid_json_raises():
    bad = b"{nope"
    with pytest.raises(ProtocolError, match="JSON"):
        _read(struct.pack(">I", len(bad)) + bad)


def test_non_object_payload_raises():
    bad = json.dumps([1, 2]).encode()
    with pytest.raises(ProtocolError, match="object"):
        _read(struct.pack(">I", len(bad)) + bad)


# -- RunRequest -------------------------------------------------------------


def test_request_dict_roundtrip():
    req = RunRequest(algorithm="mst", n=128, seed=3, k=8, scheme="powerlaw", epoch=2)
    assert RunRequest.from_dict(req.to_dict()) == req


def test_request_from_dict_coerces_ints():
    req = RunRequest.from_dict({"n": "128", "k": "8", "seed": "1", "epoch": "0"})
    assert (req.n, req.k, req.seed) == (128, 8, 1)


def test_request_rejects_unknown_fields():
    with pytest.raises(ProtocolError, match="unknown"):
        RunRequest.from_dict({"n": 64, "bogus": 1})


@pytest.mark.parametrize(
    "fields",
    [
        {"n": 2},
        {"k": 1},
        {"scheme": "nope"},
        {"epoch": -1},
        {"family": "petersen"},
        {"algorithm": ""},
    ],
)
def test_request_validation_rejects(fields):
    with pytest.raises(ProtocolError):
        RunRequest(**fields).validate()


def test_cluster_key_axes():
    base = RunRequest(n=64)
    assert base.cluster_key() == RunRequest(n=64).cluster_key()
    for other in (
        RunRequest(n=96),
        RunRequest(n=64, k=8),
        RunRequest(n=64, seed=1),
        RunRequest(n=64, scheme="powerlaw"),
        RunRequest(n=64, epoch=1),
        RunRequest(n=64, scenario="lollipop"),
    ):
        assert other.cluster_key() != base.cluster_key()
    # The algorithm is NOT part of the key: different algorithms on the
    # same input share one cluster build — the coalescing the service sells.
    assert RunRequest(n=64, algorithm="mst").cluster_key() == base.cluster_key()


def test_family_precedence_matches_cli():
    assert RunRequest(family="path", scenario="lollipop").family_label() == "path"
    assert RunRequest(scenario="lollipop").family_label() == "scenario:lollipop"
    assert RunRequest().family_label() == "gnm"


def test_weight_requiring_algorithm_forces_weighted_key():
    # mst needs weights even when the request says weighted=False, so its
    # graph key must not collide with a genuinely unweighted build.
    mst = RunRequest(algorithm="mst", weighted=False)
    conn = RunRequest(algorithm="connectivity", weighted=False)
    assert mst.effective_weighted() is True
    assert conn.effective_weighted() is False
    assert mst.graph_key() != conn.graph_key()


def test_build_graph_matches_generator_derivation():
    req = RunRequest(n=64, seed=5, weighted=False, algorithm="connectivity")
    expected = generators.gnm_random(64, 192, seed=derive_seed(5, 0x5CE0))
    got = req.build_graph()
    assert got.n == expected.n
    assert (got.edges_u == expected.edges_u).all()
    assert (got.edges_v == expected.edges_v).all()


def test_build_graph_scenario_path_matches_scenario():
    from repro.scenarios.registry import get_scenario

    req = RunRequest(scenario="lollipop", n=64, seed=2)
    expected = get_scenario("lollipop").make_graph(64, 2)
    got = req.build_graph()
    assert got.n == expected.n
    assert (got.edges_u == expected.edges_u).all()
    assert (got.edges_v == expected.edges_v).all()


# -- update streams ---------------------------------------------------------


def _storm_dict() -> dict:
    from repro.scenarios.updates import UpdateBatch, UpdatePlan

    return UpdatePlan(
        batches=(
            UpdateBatch(kind="mix", size=12, insert_fraction=0.5),
            UpdateBatch(kind="tree_delete", size=6),
        )
    ).to_dict()


def test_request_roundtrips_update_plan():
    from repro.scenarios.updates import UpdatePlan

    req = RunRequest(algorithm="mst_dynamic", n=96, seed=2, updates=_storm_dict())
    again = RunRequest.from_dict(req.to_dict())
    assert again == req
    cfg = again.run_config()
    assert cfg.updates == UpdatePlan.from_dict(_storm_dict())


def test_updates_do_not_split_the_cluster_key():
    # The stream mutates maintained state, not the cluster build: update
    # traffic must coalesce onto the same cached cluster as static traffic.
    static = RunRequest(algorithm="mst", n=64, seed=1)
    dynamic = RunRequest(algorithm="mst_dynamic", n=64, seed=1, updates=_storm_dict())
    assert dynamic.cluster_key() == static.cluster_key()
    assert dynamic.graph_key() == static.graph_key()


@pytest.mark.parametrize(
    "updates",
    [
        17,  # not an object
        {"batches": [{"kind": "meteor", "size": 4}]},  # bad kind
        {"batches": [], "surprise": 1},  # unknown key
    ],
)
def test_invalid_update_plan_is_a_protocol_error(updates):
    with pytest.raises(ProtocolError):
        RunRequest(algorithm="mst_dynamic", updates=updates).validate()
