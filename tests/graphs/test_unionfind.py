"""Tests for repro.graphs.unionfind, including hypothesis invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.unionfind import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 3

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_labels_consistent(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        lab = uf.labels()
        assert lab[0] == lab[1]
        assert lab[2] == lab[3]
        assert lab[0] != lab[2]

    def test_component_sizes(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        sizes = sorted(uf.component_sizes().tolist())
        assert sizes == [1, 1, 3]

    def test_empty(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert uf.labels().size == 0


@given(
    n=st.integers(min_value=1, max_value=40),
    ops=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=120),
)
@settings(max_examples=60, deadline=None)
def test_property_matches_naive_partition(n, ops):
    """Union-find agrees with a naive partition-refinement oracle."""
    uf = UnionFind(n)
    naive = [{i} for i in range(n)]
    where = list(range(n))
    for a, b in ops:
        a, b = a % n, b % n
        uf.union(a, b)
        if where[a] != where[b]:
            src, dst = where[b], where[a]
            for x in naive[src]:
                where[x] = dst
            naive[dst] |= naive[src]
            naive[src] = set()
    lab = uf.labels()
    for i in range(n):
        for j in range(i + 1, n):
            assert (lab[i] == lab[j]) == (where[i] == where[j])
    assert uf.n_components == len({w for w in where})
    _ = np  # numpy imported for dtype parity with the module under test
