"""Tests for bulk communication steps and dissemination primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.comm import CommStep, broadcast_from_machine, disseminate_from_machine
from repro.cluster.ledger import RoundLedger
from repro.cluster.topology import ClusterTopology


def ledger(k=4, bw=100) -> RoundLedger:
    return RoundLedger(ClusterTopology(k=k, bandwidth_bits=bw))


class TestCommStep:
    def test_vectorized_add_and_deliver(self):
        led = ledger()
        step = CommStep(led, "s")
        step.add(np.array([0, 0, 1]), np.array([1, 2, 3]), np.array([150, 20, 99]))
        assert step.deliver() == 2  # ceil(150/100)
        assert led.total_bits == 269

    def test_scalar_broadcasting(self):
        led = ledger()
        step = CommStep(led, "s")
        step.add(0, np.array([1, 2, 3]), 10)
        step.deliver()
        assert led.sent_bits[0] == 30

    def test_double_deliver_rejected(self):
        step = CommStep(ledger(), "s")
        step.deliver()
        with pytest.raises(RuntimeError):
            step.deliver()

    def test_add_after_deliver_rejected(self):
        step = CommStep(ledger(), "s")
        step.deliver()
        with pytest.raises(RuntimeError):
            step.add(0, 1, 10)

    def test_out_of_range_machines(self):
        step = CommStep(ledger(k=2), "s")
        with pytest.raises(ValueError):
            step.add(0, 5, 10)

    def test_negative_bits(self):
        step = CommStep(ledger(), "s")
        with pytest.raises(ValueError):
            step.add(0, 1, -1)

    def test_add_grouped(self):
        led = ledger()
        step = CommStep(led, "s")
        step.add_grouped(np.array([[0, 1], [2, 3]]), 42)
        step.deliver()
        assert led.total_bits == 84

    def test_empty_step_zero_rounds(self):
        assert CommStep(ledger(), "s").deliver() == 0


class TestBroadcast:
    def test_naive_broadcast_rounds(self):
        led = ledger(k=5, bw=100)
        rounds = broadcast_from_machine(led, "b", 0, 250)
        assert rounds == 3  # ceil(250/100) to each of 4 peers in parallel

    def test_dissemination_beats_naive_for_large_payloads(self):
        # The 2-round relay spreads the payload over k-1 links.
        k, bw, bits = 9, 100, 100_000
        naive = broadcast_from_machine(ledger(k, bw), "b", 0, bits)
        relay = disseminate_from_machine(ledger(k, bw), "d", 0, bits)
        assert relay < naive
        # Relay is ~2/(k-1) of naive.
        assert relay <= 2 * (naive // (k - 1)) + 4

    def test_dissemination_all_machines_receive(self):
        led = ledger(k=4, bw=1000)
        disseminate_from_machine(led, "d", 0, 900)
        # Every machine other than the source received bits.
        assert all(led.received_bits[m] > 0 for m in range(1, 4))
