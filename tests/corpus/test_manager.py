"""Property tests of the corpus manifest/digest layer (ISSUE 9 satellite).

Hypothesis-driven guarantees of :class:`~repro.corpus.manager.CorpusManager`:

* **gen → verify is clean** — any materialized (family, params, seed)
  cell verifies against both gates (stored digest + regeneration);
* **corruption is caught** — flipping any single byte of the npz payload,
  or perturbing any manifest field, fails ``verify``; unreadable framing
  counts the same as digest drift;
* **info is ground truth** — ``info`` fields match an independent fresh
  generation of the cell.

Plus the deterministic manager mechanics the properties lean on:
content-addressing, idempotence, atomic manifests, and the load LRU.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.families import CORPUS_FAMILIES
from repro.corpus.manager import (
    CorpusManager,
    CorpusVerifyError,
    edge_digest,
    entry_id_for,
)

# Small, fast cells drawn over three representative families: a seeded
# random family, an unseeded shape, and a weighted variant.
_CELLS = (
    ("gnm", {"n": 40, "m": 90}),
    ("gnm", {"n": 40, "m": 90, "weighted": True}),
    ("path", {"n": 48}),
    ("planted_cut", {"n": 48, "cut_size": 2, "inner_degree": 5}),
)
cells = st.sampled_from(_CELLS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _gen(tmp_path, cell, seed):
    manager = CorpusManager(tmp_path)
    family, params = cell
    return manager, manager.generate(family, params, seed)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cell=cells, seed=seeds)
def test_gen_then_verify_is_clean(tmp_path_factory, cell, seed):
    tmp_path = tmp_path_factory.mktemp("corpus")
    manager, entry = _gen(tmp_path, cell, seed)
    assert manager.verify(entry.entry_id) == entry
    results = dict(manager.verify_all())
    assert results == {entry.entry_id: None}


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cell=cells, seed=seeds, flip=st.data())
def test_any_single_byte_payload_corruption_is_caught(tmp_path_factory, cell, seed, flip):
    # "Payload" = the stored edge-array bytes, the extent the SHA-256
    # digest covers.  Zip container slack (member timestamps, local-header
    # name copies) is CRC/metadata territory and deliberately outside the
    # digest's trust boundary.
    from repro.corpus.manager import _mmap_npz_arrays

    tmp_path = tmp_path_factory.mktemp("corpus")
    manager, entry = _gen(tmp_path, cell, seed)
    npz = manager.npz_path(entry.entry_id)
    spans = [
        (arr.offset, arr.offset + arr.nbytes)
        for arr in _mmap_npz_arrays(npz).values()
    ]
    blob = bytearray(npz.read_bytes())
    lo, hi = flip.draw(st.sampled_from(spans))
    pos = flip.draw(st.integers(min_value=lo, max_value=hi - 1))
    delta = flip.draw(st.integers(min_value=1, max_value=255))
    blob[pos] = (blob[pos] + delta) % 256
    npz.write_bytes(bytes(blob))
    manager.clear_cache()
    with pytest.raises(CorpusVerifyError):
        manager.verify(entry.entry_id)
    (entry_id, error), = manager.verify_all()
    assert entry_id == entry.entry_id and error is not None


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cell=cells, seed=seeds, which=st.sampled_from(("digest", "n", "m", "seed", "params", "weighted", "family")))
def test_any_manifest_field_corruption_is_caught(tmp_path_factory, cell, seed, which):
    tmp_path = tmp_path_factory.mktemp("corpus")
    manager, entry = _gen(tmp_path, cell, seed)
    path = manager.manifest_path(entry.entry_id)
    manifest = json.loads(path.read_text())
    if which == "digest":
        manifest["digest"] = "0" * 64
    elif which in ("n", "m", "seed"):
        manifest[which] = int(manifest[which]) + 1
    elif which == "params":
        manifest["params"] = dict(manifest["params"], weighted=not manifest["params"]["weighted"])
    elif which == "weighted":
        manifest["weighted"] = not manifest["weighted"]
    elif which == "family":
        manifest["family"] = "cycle" if manifest["family"] != "cycle" else "path"
    path.write_text(json.dumps(manifest, sort_keys=True, indent=2))
    manager.clear_cache()
    with pytest.raises((CorpusVerifyError, KeyError, ValueError)):
        manager.verify(entry.entry_id)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(cell=cells, seed=seeds)
def test_info_matches_regenerated_ground_truth(tmp_path_factory, cell, seed):
    tmp_path = tmp_path_factory.mktemp("corpus")
    manager, entry = _gen(tmp_path, cell, seed)
    info = manager.info(entry.entry_id)
    family, params = cell
    fam = CORPUS_FAMILIES[family]
    fresh = fam.generate(params, seed)
    assert info["n"] == fresh.n
    assert info["m"] == fresh.m
    assert info["weighted"] == fresh.weighted
    assert info["seed"] == fam.normalize_seed(seed)
    assert info["params"] == fam.normalize(params)
    assert info["digest"] == edge_digest(
        fresh.edges_u, fresh.edges_v, fresh.weights if fresh.weighted else None
    )
    assert info["npz_bytes"] == manager.npz_path(entry.entry_id).stat().st_size


class TestManagerMechanics:
    def test_content_addressing_normalizes_unseeded_seeds(self, tmp_path):
        manager = CorpusManager(tmp_path)
        a = manager.generate("path", {"n": 32}, 0)
        b = manager.generate("path", {"n": 32}, 99)
        assert a.entry_id == b.entry_id
        assert a.entry_id == entry_id_for(CORPUS_FAMILIES["path"], {"n": 32}, 99)
        assert len(manager.entries()) == 1

    def test_seeded_families_get_distinct_entries_per_seed(self, tmp_path):
        manager = CorpusManager(tmp_path)
        a = manager.generate("gnm", {"n": 32, "m": 64}, 0)
        b = manager.generate("gnm", {"n": 32, "m": 64}, 1)
        assert a.entry_id != b.entry_id
        assert a.digest != b.digest

    def test_generate_is_idempotent_without_rebuilding(self, tmp_path):
        manager = CorpusManager(tmp_path)
        first = manager.generate("gnm", {"n": 32, "m": 64}, 0)
        npz = manager.npz_path(first.entry_id)
        stamp = npz.stat().st_mtime_ns
        again = manager.generate("gnm", {"n": 32, "m": 64}, 0)
        assert again == first
        assert npz.stat().st_mtime_ns == stamp
        forced = manager.generate("gnm", {"n": 32, "m": 64}, 0, force=True)
        assert forced == first  # regeneration is deterministic

    def test_load_lru_coalesces_and_counts(self, tmp_path):
        manager = CorpusManager(tmp_path, cache_size=1)
        a = manager.generate("path", {"n": 24}, 0)
        b = manager.generate("cycle", {"n": 24}, 0)
        g1 = manager.load(a.entry_id)
        assert manager.load(a.entry_id) is g1
        manager.load(b.entry_id)  # evicts a
        manager.load(a.entry_id)
        info = manager.cache_info()
        assert info == {
            "hits": 1, "misses": 3, "evictions": 2, "size": 1, "max_size": 1,
        }

    def test_load_without_mmap_matches_mmap(self, tmp_path):
        manager = CorpusManager(tmp_path)
        entry = manager.generate("gnm", {"n": 40, "m": 90, "weighted": True}, 3)
        mapped = manager.load(entry.entry_id, mmap=True)
        plain = manager.load(entry.entry_id, mmap=False)
        assert isinstance(mapped.edges_u, np.memmap)
        assert not isinstance(plain.edges_u, np.memmap)
        for attr in ("indptr", "indices", "edge_ids", "edges_u", "edges_v", "weights"):
            assert getattr(mapped, attr).tobytes() == getattr(plain, attr).tobytes()

    def test_missing_entry_raises_keyerror(self, tmp_path):
        manager = CorpusManager(tmp_path)
        with pytest.raises(KeyError, match="not found"):
            manager.load("gnm/doesnotexist_0")
        with pytest.raises(KeyError, match="not found"):
            manager.info("gnm/doesnotexist_0")

    def test_digest_separates_weights_from_topology(self):
        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        w = np.array([0.5, 0.25], dtype=np.float64)
        assert edge_digest(u, v, None) != edge_digest(u, v, w)
        assert edge_digest(u, v, w) == edge_digest(u, v, w)
