"""Tests for the engine-level protocols package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterTopology, KMachineCluster, RoundLedger
from repro.cluster.engine import SyncEngine
from repro.graphs import generators as gen
from repro.graphs import reference as ref
from repro.protocols import (
    LeaderElectionProgram,
    bfs_distances_distributed,
    charge_leader_election,
    elect_leader,
)
from repro.protocols.base import TypedProgram


class TestLeaderElection:
    @pytest.mark.parametrize("k", [2, 3, 8, 16])
    def test_unique_leader_constant_rounds(self, k):
        leader, rounds = elect_leader(k, seed=7)
        assert 0 <= leader < k
        assert rounds <= 4  # O(1): one exchange + drain

    def test_all_machines_agree(self):
        k = 6
        topo = ClusterTopology(k=k, bandwidth_bits=1024)
        programs = [LeaderElectionProgram(k, seed=3) for _ in range(k)]
        SyncEngine(topo).run(programs)
        assert len({p.leader for p in programs}) == 1

    def test_deterministic_given_seed(self):
        assert elect_leader(8, seed=1)[0] == elect_leader(8, seed=1)[0]

    def test_seed_varies_leader(self):
        leaders = {elect_leader(8, seed=s)[0] for s in range(20)}
        assert len(leaders) > 1  # not a fixed machine

    def test_bulk_variant_matches_engine(self):
        k = 8
        led = RoundLedger(ClusterTopology(k=k, bandwidth_bits=1024))
        bulk_leader, bulk_rounds = charge_leader_election(led, seed=5)
        engine_leader, _ = elect_leader(k, seed=5)
        assert bulk_leader == engine_leader
        assert bulk_rounds >= 1
        assert led.total_bits == k * (k - 1) * 64


class TestBFS:
    def test_path_distances(self):
        g = gen.path_graph(40)
        cl = KMachineCluster.create(g, k=4, seed=1)
        dist, rounds = bfs_distances_distributed(cl, source=0)
        assert np.array_equal(dist, ref.bfs_distances(g, 0))
        assert rounds >= 39  # at least one round per BFS level

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_graph_distances(self, seed):
        g = gen.gnm_random(120, 360, seed=seed)
        cl = KMachineCluster.create(g, k=4, seed=seed)
        dist, _ = bfs_distances_distributed(cl, source=5)
        assert np.array_equal(dist, ref.bfs_distances(g, 5))

    def test_disconnected_marks_unreachable(self):
        g = gen.disjoint_union([gen.path_graph(10), gen.path_graph(10)])
        cl = KMachineCluster.create(g, k=4, seed=2)
        dist, _ = bfs_distances_distributed(cl, source=0)
        assert np.all(dist[10:] == -1)
        assert np.all(dist[:10] >= 0)

    def test_rounds_track_diameter(self):
        shallow = gen.gnm_random(200, 2000, seed=3)
        deep = gen.path_graph(200)
        cl1 = KMachineCluster.create(shallow, k=4, seed=3)
        cl2 = KMachineCluster.create(deep, k=4, seed=3)
        _, r_shallow = bfs_distances_distributed(cl1, source=0)
        _, r_deep = bfs_distances_distributed(cl2, source=0)
        assert r_deep > 3 * r_shallow


class TestTypedProgram:
    def test_unknown_tag_rejected(self):
        class P(TypedProgram):
            def start(self, machine):
                self.send(1 - machine, "mystery", None, bits=1)

        topo = ClusterTopology(k=2, bandwidth_bits=64)
        with pytest.raises(ValueError, match="no handler"):
            SyncEngine(topo).run([P(), P()])

    def test_send_outside_round_rejected(self):
        p = TypedProgram()
        with pytest.raises(RuntimeError):
            p.send(0, "x", None, 1)
