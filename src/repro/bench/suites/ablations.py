"""Ablation benchmarks: the design choices behind the Theorem-1 machinery.

AB-1 bulk accounting vs exact engine, AB-2 sketches vs enumeration, AB-3
fresh proxies vs fixed destinations, AB-4 DRR vs naive merging, AB-5 hash
families, AB-6 the MST elimination budget.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark
from repro.bench.suites.common import session_for, weighted_gnm_with_mst_weight
from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.cluster.engine import Envelope, SyncEngine
from repro.cluster.ledger import RoundLedger
from repro.cluster.topology import ClusterTopology
from repro.core.proxy import proxy_of_labels
from repro.graphs import generators
from repro.graphs import reference as ref
from repro.util.rng import SeedStream

# -- AB-1: bulk step accounting vs the exact mailbox engine ------------------


def _engine_flooding_rounds(g, cl) -> int:
    """Execute flooding on the per-round mailbox engine; return its rounds."""
    home = cl.partition.home
    label_bits = max(1, int(np.ceil(np.log2(g.n))))

    class FloodProgram:
        def __init__(self) -> None:
            self.labels = np.arange(g.n, dtype=np.int64)
            self.started = False

        def on_round(self, machine, round_no, inbox):
            updated: set[int] = set()
            if not self.started:
                self.started = True
                updated = {int(v) for v in np.nonzero(home == machine)[0]}
            for env in inbox:
                v, lab = env.payload
                if lab < self.labels[v]:
                    self.labels[v] = lab
                    updated.add(v)
            outs = []
            for v in updated:
                for w in g.neighbors(v):
                    outs.append(
                        Envelope(
                            machine,
                            int(home[int(w)]),
                            label_bits,
                            (int(w), int(self.labels[v])),
                        )
                    )
            return outs

        def is_done(self, machine):
            return True

    engine = SyncEngine(cl.topology)
    result = engine.run([FloodProgram() for _ in range(cl.k)], max_rounds=100_000)
    assert result.terminated
    return int(result.rounds)


@register_benchmark(
    "ablation_engines",
    title="AB-1: bulk-ledger rounds vs exact mailbox-engine rounds (flooding)",
    group="ablation",
    cells=[
        {"workload": "gnm", "n": 256, "m_mult": 4, "k": 4},
        {"workload": "path", "n": 256, "k": 4},
        {"workload": "star", "n": 256, "k": 4},
    ],
    quick_cells=[
        {"workload": "gnm", "n": 128, "m_mult": 4, "k": 4},
        {"workload": "path", "n": 128, "k": 4},
    ],
    seed=21,
)
def _engines_agree(cell: dict, seed: int) -> dict:
    n = cell["n"]
    if cell["workload"] == "gnm":
        g = generators.gnm_random(n, cell["m_mult"] * n, seed=seed)
    elif cell["workload"] == "path":
        g = generators.path_graph(n)
    else:
        g = generators.star_graph(n)
    bulk = session_for(g, seed=seed, k=cell["k"]).run("flooding").rounds
    cl = KMachineCluster.create(g, k=cell["k"], seed=seed)
    exact = _engine_flooding_rounds(g, cl)
    return {"bulk_rounds": int(bulk), "engine_rounds": exact, "ratio": exact / bulk}


# -- AB-2: sketches vs explicit edge enumeration -----------------------------


@register_benchmark(
    "ablation_sketch_vs_enum",
    title="AB-2: total communication vs edge density, sketches vs enumeration",
    group="ablation",
    cells=[{"n": 1024, "density": d, "k": 8} for d in (4, 16, 64, 256)],
    quick_cells=[{"n": 256, "density": d, "k": 8} for d in (4, 16)],
    seed=23,
)
def _sketch_vs_enum(cell: dict, seed: int) -> dict:
    n = cell["n"]
    g = generators.gnm_random(n, cell["density"] * n, seed=seed)
    session = session_for(g, seed=seed, k=cell["k"])
    sketch_bits = session.run("connectivity").total_bits
    enum_bits = session.run("boruvka_nosketch").total_bits
    return {
        "sketch_bits": int(sketch_bits),
        "enum_bits": int(enum_bits),
        "enum_over_sketch": enum_bits / sketch_bits,
    }


# -- AB-3: fresh random proxies vs fixed destinations ------------------------


def _max_receive(policy: str, n_parts: int, n_iterations: int, k: int) -> int:
    """Max per-machine cumulative receive volume over the iterations."""
    topo = ClusterTopology(k=k, bandwidth_bits=1)  # measure in messages
    led = RoundLedger(topo)
    labels = np.arange(n_parts, dtype=np.int64) % 64  # 64 components
    part_machine = np.arange(n_parts, dtype=np.int64) % k
    fixed_dest = proxy_of_labels(SeedStream(0xF1), labels, k)
    for it in range(n_iterations):
        if policy == "proxy" and it > 0:
            dest = proxy_of_labels(SeedStream(0xF1 + it), labels, k)
        else:
            dest = fixed_dest
        step = CommStep(led, f"{policy}:{it}")
        step.add(part_machine, dest, 1)
        step.deliver()
    return int(led.received_bits.max())


@register_benchmark(
    "ablation_proxy_congestion",
    title="AB-3: receive congestion, fresh proxies vs fixed destinations",
    group="ablation",
    cells=[{"iterations": it, "n_parts": 8192, "k": 16} for it in (1, 4, 16, 64)],
    quick_cells=[{"iterations": it, "n_parts": 2048, "k": 16} for it in (1, 4, 16)],
    seed=0,
)
def _proxy_congestion(cell: dict, seed: int) -> dict:
    iters, n_parts, k = cell["iterations"], cell["n_parts"], cell["k"]
    proxy = _max_receive("proxy", n_parts, iters, k)
    fixed = _max_receive("fixed", n_parts, iters, k)
    ideal = n_parts * iters / k
    return {
        "proxy_max_recv": proxy,
        "fixed_max_recv": fixed,
        "proxy_over_ideal": proxy / ideal,
        "fixed_over_ideal": fixed / ideal,
    }


# -- AB-4: DRR vs naive merge-along-every-edge -------------------------------


def _naive_chain_depth(n: int) -> int:
    """Every component attaches to its ring successor: an (n-1)-deep chain."""
    return n - 1


def _drr_depth_on_ring(n: int, seed: int) -> int:
    ranks = SeedStream(seed).keyed_u64(np.arange(n, dtype=np.uint64))
    nxt = (np.arange(n) + 1) % n
    parent = np.where(ranks[nxt] > ranks, nxt, -1)
    depth = np.zeros(n, dtype=np.int64)
    order = np.argsort(ranks)[::-1]
    for c in order:
        p = parent[c]
        if p >= 0:
            depth[c] = depth[p] + 1
    return int(depth.max())


@register_benchmark(
    "ablation_drr_vs_naive",
    title="AB-4: merge-structure depth, DRR vs naive chaining on rings",
    group="ablation",
    cells=[{"n": n, "n_seeds": 8} for n in (1024, 8192, 65536)],
    quick_cells=[{"n": n, "n_seeds": 4} for n in (256, 1024)],
    seed=100,
)
def _drr_vs_naive(cell: dict, seed: int) -> dict:
    n = cell["n"]
    drr = max(_drr_depth_on_ring(n, seed + s) for s in range(cell["n_seeds"]))
    naive = _naive_chain_depth(n)
    return {"drr_max_depth": drr, "naive_depth": naive, "naive_over_drr": naive / drr}


# -- AB-5: hash families -----------------------------------------------------


@register_benchmark(
    "ablation_hash_family",
    title="AB-5: provable polynomial hashing vs the SplitMix64 PRF fast path",
    group="ablation",
    cells=[{"family": f, "n": 1024, "m_mult": 4, "k": 8} for f in ("prf", "polynomial")],
    quick_cells=[
        {"family": f, "n": 256, "m_mult": 4, "k": 8} for f in ("prf", "polynomial")
    ],
    seed=29,
)
def _hash_family(cell: dict, seed: int) -> dict:
    from repro.runtime import ClusterConfig, RunConfig, Session, SketchConfig

    n = cell["n"]
    g = generators.gnm_random(n, cell["m_mult"] * n, seed=seed)
    truth = ref.connected_components(g)
    config = RunConfig(
        seed=seed,
        sketch=SketchConfig(hash_family=cell["family"]),
        cluster=ClusterConfig(k=cell["k"]),
    )
    r = Session(g, config=config).run("connectivity")
    return {
        "correct": bool(np.array_equal(np.asarray(r.result["labels"]), truth)),
        "phases": int(r.result["phases"]),
        "rounds": int(r.rounds),
        # The families' wall-time ratio is the headline; exclude the shared
        # graph-construction/reference overhead from the recorded timing.
        "_wall_time_s": r.wall_time_s,
    }


# -- AB-6: MST elimination budget --------------------------------------------


@register_benchmark(
    "ablation_elimination_budget",
    title="AB-6: MST weight error vs the fixed elimination budget t",
    group="ablation",
    cells=[
        *({"budget": b, "n": 512, "m_mult": 6, "k": 8, "n_seeds": 3} for b in (1, 2, 4, 8, 16)),
        {"budget": "fixpoint", "n": 512, "m_mult": 6, "k": 8, "n_seeds": 1},
    ],
    quick_cells=[
        *({"budget": b, "n": 128, "m_mult": 6, "k": 4, "n_seeds": 2} for b in (1, 8)),
        {"budget": "fixpoint", "n": 128, "m_mult": 6, "k": 4, "n_seeds": 1},
    ],
    seed=31,
)
def _elimination_budget(cell: dict, seed: int) -> dict:
    n = cell["n"]
    g, opt = weighted_gnm_with_mst_weight(n, cell["m_mult"], seed)
    budget = cell["budget"]
    params = {} if budget == "fixpoint" else {"strict_elimination_budget": int(budget)}
    errors = []
    spans = True
    for s in range(cell["n_seeds"]):
        session = session_for(g, seed=seed + 1 + s, k=cell["k"], params=params)
        res = session.run("mst").result
        spans = spans and res["n_edges"] == n - 1
        errors.append((res["total_weight"] - opt) / opt)
    return {
        "mean_weight_error": float(np.mean(errors)),
        "max_weight_error": float(np.max(errors)),
        "always_spans": bool(spans),
    }
