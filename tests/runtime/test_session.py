"""Session runner: cluster caching, seed precedence in practice, and sweeps."""

from __future__ import annotations

import pytest

from repro import generators
from repro.runtime import ClusterConfig, RunConfig, Session

CFG = RunConfig(seed=4, cluster=ClusterConfig(k=4))


@pytest.fixture(scope="module")
def graph():
    return generators.gnm_random(150, 450, seed=4)


class TestClusterCache:
    def test_same_key_reuses_cluster(self, graph):
        session = Session(graph, config=CFG)
        c1 = session.cluster_for(graph, CFG.cluster, 4)
        c2 = session.cluster_for(graph, CFG.cluster, 4)
        assert c1 is c2

    def test_reuse_resets_ledger(self, graph):
        session = Session(graph, config=CFG)
        first = session.run("connectivity")
        second = session.run("connectivity")
        # Identical cost both times: the cached cluster started fresh.
        assert first.rounds == second.rounds

    def test_different_seed_builds_new_partition(self, graph):
        session = Session(graph, config=CFG)
        c1 = session.cluster_for(graph, CFG.cluster, 4)
        c2 = session.cluster_for(graph, CFG.cluster, 5)
        assert c1 is not c2

    def test_pinned_partition_seed_shared_across_run_seeds(self, graph):
        cc = ClusterConfig(k=4, partition_seed=99)
        session = Session(graph)
        assert session.cluster_for(graph, cc, 1) is session.cluster_for(graph, cc, 2)

    def test_pinned_bandwidth_bits(self, graph):
        session = Session(graph)
        cc = ClusterConfig(k=4, bandwidth_bits=512)
        cluster = session.cluster_for(graph, cc, 4)
        assert cluster.topology.bandwidth_bits == 512
        # A different pin is a different cache entry.
        other = session.cluster_for(graph, ClusterConfig(k=4, bandwidth_bits=1024), 4)
        assert other is not cluster

    def test_clear_cache(self, graph):
        session = Session(graph, config=CFG)
        c1 = session.cluster_for(graph, CFG.cluster, 4)
        session.clear_cache()
        assert session.cluster_for(graph, CFG.cluster, 4) is not c1

    def test_cache_is_bounded(self, graph):
        session = Session(graph, config=CFG, cache_size=2)
        for seed in range(4):
            session.cluster_for(graph, CFG.cluster, seed)
        assert len(session._clusters) == 2

    def test_graph_only_algorithm_skips_cluster_cache(self, graph):
        session = Session(graph, config=CFG)
        report = session.run("rep")
        assert report.rounds > 0  # ledger totals come from the internal REP cluster
        assert session._clusters == {}

    def test_sweep_factory_graphs_not_cached(self):
        session = Session(config=CFG)
        session.sweep(
            "connectivity",
            ns=(64, 96),
            graph_factory=lambda n: generators.gnm_random(n, 3 * n, seed=1),
        )
        assert session._clusters == {}


class TestRun:
    def test_missing_graph_raises(self):
        with pytest.raises(ValueError, match="no graph"):
            Session().run("connectivity")

    def test_per_run_seed_overrides_config_seed(self, graph):
        session = Session(graph, config=CFG)
        assert session.run("connectivity").seed == 4
        assert session.run("connectivity", seed=11).seed == 11

    def test_call_config_overrides_session_config(self, graph):
        session = Session(graph, config=CFG)
        report = session.run(
            "connectivity", config=RunConfig(seed=4, cluster=ClusterConfig(k=8))
        )
        assert report.graph["k"] == 8

    def test_graph_override(self, graph):
        other = generators.planted_components(90, 3, seed=1)
        report = Session(graph, config=CFG).run("connectivity", other)
        assert report.result["n_components"] == 3


class TestSweep:
    def test_grid_order_and_size(self, graph):
        session = Session(graph, config=CFG)
        reports = session.sweep("connectivity", ks=(2, 4), seeds=(0, 1))
        assert [(r.graph["k"], r.seed) for r in reports] == [
            (2, 0),
            (2, 1),
            (4, 0),
            (4, 1),
        ]

    def test_defaults_fill_from_config(self, graph):
        session = Session(graph, config=CFG)
        reports = session.sweep("connectivity")
        assert len(reports) == 1
        assert reports[0].seed == 4 and reports[0].graph["k"] == 4

    def test_n_sweep_needs_factory(self, graph):
        with pytest.raises(ValueError, match="graph_factory"):
            Session(graph, config=CFG).sweep("connectivity", ns=(64, 128))

    def test_n_sweep(self):
        session = Session(config=CFG)
        reports = session.sweep(
            "connectivity",
            ns=(64, 128),
            graph_factory=lambda n: generators.gnm_random(n, 3 * n, seed=1),
        )
        assert [r.graph["n"] for r in reports] == [64, 128]

    def test_process_pool_matches_sequential(self, graph):
        session = Session(graph, config=CFG)
        seq = session.sweep("connectivity", ks=(2, 4), seeds=(0, 1))
        par = session.sweep("connectivity", ks=(2, 4), seeds=(0, 1), processes=2)
        assert [r.to_json(include_timing=False) for r in seq] == [
            r.to_json(include_timing=False) for r in par
        ]
