"""Input partitioning: random vertex partition (RVP) and random edge partition (REP).

Section 1.1: in the RVP model each vertex (with its incident edges) is
assigned independently and uniformly at random to one of the k machines —
the partition used by Pregel-style systems via vertex hashing.  A key
consequence the algorithms exploit: *every machine can compute any vertex's
home machine locally* (the partition is a shared hash function), which is
how proxies address the home machines of sampled edge endpoints.

Section 1.3 discusses the REP model (edges assigned randomly to machines)
where the tight bound is Theta~(n/k) instead; :func:`random_edge_partition`
supports the comparison experiments in :mod:`repro.baselines.rep`.

Skewed partitions (adversarial scenarios)
-----------------------------------------
The paper's bounds assume the *uniform* RVP; the scenario engine stresses
that assumption with three skewed placements behind the typed
:class:`PartitionConfig` (see DESIGN.md §7):

* ``powerlaw`` — machine j receives vertices with probability
  proportional to ``(j + 1) ** -alpha`` (hot-machine skew);
* ``locality`` — contiguous vertex ranges map to machines (the worst case
  for hash-partitioned systems ingesting crawl-ordered ids), with a
  seeded ``noise`` fraction re-hashed uniformly;
* ``adversarial_heavy`` — the top ``heavy_fraction`` of vertices by
  degree all land on machine 0 (the "all heavy vertices on one machine"
  adversary), the rest uniform.

Every scheme remains a deterministic function of ``(seed, n, k, scheme
parameters)`` — and, for ``adversarial_heavy``, the globally known degree
sequence — so any machine can still compute any vertex's home locally,
preserving the model's shared-hash addressing requirement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

from repro.util.rng import SeedStream, derive_seed

__all__ = [
    "PARTITION_SCHEMES",
    "PartitionConfig",
    "VertexPartition",
    "adversarial_heavy_partition",
    "build_partition",
    "locality_vertex_partition",
    "powerlaw_vertex_partition",
    "random_edge_partition",
    "random_vertex_partition",
]

#: Accepted placement schemes (see module docstring).
PARTITION_SCHEMES = ("uniform", "powerlaw", "locality", "adversarial_heavy")


@dataclass(frozen=True)
class PartitionConfig:
    """Typed description of how vertices are placed on machines.

    Attributes
    ----------
    scheme:
        One of :data:`PARTITION_SCHEMES`; ``uniform`` is the paper's RVP.
    alpha:
        Skew exponent of the ``powerlaw`` scheme (larger = more skew).
    noise:
        Fraction of vertices re-hashed uniformly under ``locality``
        (0 = perfectly contiguous blocks).
    heavy_fraction:
        Fraction of highest-degree vertices pinned to machine 0 under
        ``adversarial_heavy``.
    """

    scheme: str = "uniform"
    alpha: float = 1.5
    noise: float = 0.05
    heavy_fraction: float = 0.05

    def validate(self) -> "PartitionConfig":
        """Raise ``ValueError`` on invalid fields; return self."""
        if self.scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"scheme must be one of {PARTITION_SCHEMES}, got {self.scheme!r}"
            )
        if not isinstance(self.alpha, (int, float)) or self.alpha < 0:
            raise ValueError(f"alpha must be a non-negative number, got {self.alpha!r}")
        if not isinstance(self.noise, (int, float)) or not (0.0 <= self.noise <= 1.0):
            raise ValueError(f"noise must be in [0, 1], got {self.noise!r}")
        if not isinstance(self.heavy_fraction, (int, float)) or not (
            0.0 < self.heavy_fraction <= 1.0
        ):
            raise ValueError(
                f"heavy_fraction must be in (0, 1], got {self.heavy_fraction!r}"
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON-serializable dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        return cls(**dict(data)).validate()


@dataclass(frozen=True)
class VertexPartition:
    """A vertex -> machine assignment, shared-hash computable.

    Attributes
    ----------
    k:
        Number of machines.
    home:
        ``int64[n]``; ``home[v]`` is the home machine of vertex ``v``.
    seed:
        The hash seed; any machine can recompute ``home[v]`` from
        ``(seed, v)`` alone (the paper's "if a machine knows a vertex ID,
        it also knows where it is hashed to").
    """

    k: int
    home: np.ndarray
    seed: int

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.home.size)

    def machine_vertices(self, machine: int) -> np.ndarray:
        """Vertices homed at ``machine`` (ascending)."""
        return np.nonzero(self.home == machine)[0].astype(np.int64)

    def counts(self) -> np.ndarray:
        """Vertices per machine (``int64[k]``)."""
        return np.bincount(self.home, minlength=self.k).astype(np.int64)

    def home_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Vectorized home lookup (recomputable by any machine)."""
        return self.home[np.asarray(vertices, dtype=np.int64)]


def random_vertex_partition(n: int, k: int, seed: int) -> VertexPartition:
    """RVP via shared hashing: vertex v -> h(v) in [k].

    Hash-based (rather than a random permutation) exactly as real systems
    do it, and as the model requires for locally-computable homes.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    stream = SeedStream(derive_seed(seed, 0x9A27, k))
    home = stream.keyed_choice(np.arange(n, dtype=np.uint64), k)
    return VertexPartition(k=k, home=home.astype(np.int64), seed=seed)


def random_edge_partition(m: int, k: int, seed: int) -> np.ndarray:
    """REP: edge index -> machine, independently and uniformly (``int64[m]``)."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    stream = SeedStream(derive_seed(seed, 0xE49, k))
    return stream.keyed_choice(np.arange(m, dtype=np.uint64), k).astype(np.int64)


# --------------------------------------------------------------------------
# Skewed placements (adversarial scenarios; see module docstring)
# --------------------------------------------------------------------------


def _check_nk(n: int, k: int) -> None:
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")


def powerlaw_vertex_partition(n: int, k: int, seed: int, alpha: float = 1.5) -> VertexPartition:
    """Skewed hashing: machine j drawn with probability ~ ``(j+1)**-alpha``.

    ``alpha = 0`` degenerates to the uniform RVP; large alpha concentrates
    most vertices on machine 0.  Placement is a keyed inverse-CDF lookup,
    so homes stay locally computable from ``(seed, v)``.
    """
    _check_nk(n, k)
    weights = (np.arange(1, k + 1, dtype=np.float64)) ** (-float(alpha))
    cdf = np.cumsum(weights / weights.sum())
    stream = SeedStream(derive_seed(seed, 0x9A28, k))
    u = stream.keyed_uniform(np.arange(n, dtype=np.uint64))
    home = np.searchsorted(cdf, u, side="right").clip(0, k - 1).astype(np.int64)
    return VertexPartition(k=k, home=home, seed=seed)


def locality_vertex_partition(n: int, k: int, seed: int, noise: float = 0.05) -> VertexPartition:
    """Contiguous vertex ranges per machine, with a uniform ``noise`` fraction.

    Models ingestion order correlating with graph locality (crawl ids,
    geographic ids): vertex v's block is ``v * k // n``; a seeded fraction
    is re-hashed uniformly, mimicking imperfect correlation.
    """
    _check_nk(n, k)
    if not (0.0 <= noise <= 1.0):
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    v = np.arange(n, dtype=np.int64)
    home = (v * k) // n
    if noise > 0.0:
        stream = SeedStream(derive_seed(seed, 0x9A29, k))
        rehash = stream.keyed_uniform(v.astype(np.uint64)) < noise
        home = home.copy()
        home[rehash] = stream.keyed_choice(v[rehash].astype(np.uint64) + np.uint64(n), k)
    return VertexPartition(k=k, home=home.astype(np.int64), seed=seed)


def adversarial_heavy_partition(
    degrees: np.ndarray, k: int, seed: int, heavy_fraction: float = 0.05
) -> VertexPartition:
    """All heavy vertices on one machine: the congestion adversary.

    The top ``ceil(heavy_fraction * n)`` vertices by degree (ties broken
    by vertex id, so the placement is deterministic) are pinned to
    machine 0; the rest hash uniformly over all k machines.  This attacks
    the proxy/congestion analysis, which relies on heavy vertices being
    spread out by the uniform RVP.
    """
    deg = np.asarray(degrees, dtype=np.int64)
    n = int(deg.size)
    _check_nk(n, k)
    if not (0.0 < heavy_fraction <= 1.0):
        raise ValueError(f"heavy_fraction must be in (0, 1], got {heavy_fraction}")
    n_heavy = min(n, int(np.ceil(heavy_fraction * n)))
    # Sort by (degree desc, id asc): lexsort keys are last-key-primary.
    order = np.lexsort((np.arange(n, dtype=np.int64), -deg))
    heavy = order[:n_heavy]
    stream = SeedStream(derive_seed(seed, 0x9A2A, k))
    home = stream.keyed_choice(np.arange(n, dtype=np.uint64), k).astype(np.int64)
    home[heavy] = 0
    return VertexPartition(k=k, home=home, seed=seed)


def build_partition(
    graph,
    k: int,
    seed: int,
    config: PartitionConfig | None = None,
    *,
    epoch: int = 0,
) -> VertexPartition:
    """Build the vertex partition selected by ``config`` for ``graph``.

    The one entry point the runtime layer uses: ``uniform`` (default)
    routes to :func:`random_vertex_partition`; the skewed schemes consume
    their :class:`PartitionConfig` knobs, and ``adversarial_heavy``
    additionally reads the graph's degree sequence.

    ``epoch`` selects the *partition epoch* of the dynamic adversary
    (DESIGN.md §8): epoch 0 (the default) is byte-identical to the
    historical behaviour, while epoch e > 0 derives an independent
    shared-hash seed from ``(seed, e)`` — so a mid-run re-shuffle stays a
    deterministic function every machine can evaluate locally, exactly
    like the epoch-0 hash.
    """
    cfg = (config if config is not None else PartitionConfig()).validate()
    if not isinstance(epoch, int) or epoch < 0:
        raise ValueError(f"epoch must be a non-negative int, got {epoch!r}")
    if epoch > 0:
        seed = derive_seed(seed, 0xE70C, epoch)
    n = int(graph.n)
    if cfg.scheme == "uniform":
        return random_vertex_partition(n, k, seed)
    if cfg.scheme == "powerlaw":
        return powerlaw_vertex_partition(n, k, seed, alpha=cfg.alpha)
    if cfg.scheme == "locality":
        return locality_vertex_partition(n, k, seed, noise=cfg.noise)
    if cfg.scheme == "adversarial_heavy":
        return adversarial_heavy_partition(
            graph.degree(), k, seed, heavy_fraction=cfg.heavy_fraction
        )
    raise ValueError(f"unknown partition scheme {cfg.scheme!r}")  # pragma: no cover
