"""EXP T1-k / T1-n — Theorem 1: connectivity runs in O~(n/k^2) rounds.

Regenerates the paper's headline claims as measured series, driven through
the unified runtime API (one ``Session``, ``sweep`` over k or n, metrics
read off the RunReport envelopes):

* ``test_rounds_vs_k`` — fixed n, sweep k: the round count must fall
  *superlinearly* in k (the prior best bound of Klauck et al. is O~(n/k),
  i.e. linear speedup; Theorem 1's point is beating it).  We report both
  raw rounds and the *work* term (raw minus the one-round-per-step floor —
  the additive "+polylog" of the O~ notation), with power-law fits.
* ``test_rounds_vs_n`` — fixed k and fixed bandwidth, sweep n: the work
  term grows ~ linearly in n.  (Bandwidth is pinned via
  ``ClusterConfig.bandwidth_bits`` across the sweep; the model's
  B = polylog(n) would otherwise mix a log^2 n factor into the measured
  exponent.)
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, report, session_for
from repro import generators
from repro.analysis import fit_power_law, format_table
from repro.util.bits import polylog_bandwidth

KS = (2, 4, 8, 16, 32)
NS = (1024, 2048, 4096, 8192)


def test_rounds_vs_k(benchmark):
    n = 4096
    g = generators.gnm_random(n, 3 * n, seed=1)
    session = session_for(g, seed=1)

    def sweep():
        return [
            (r.graph["k"], r.rounds, r.work_rounds, r.result["phases"])
            for r in session.sweep("connectivity", ks=KS)
        ]

    rows = once(benchmark, sweep)
    ks = np.array([r[0] for r in rows], dtype=float)
    raw = np.array([r[1] for r in rows], dtype=float)
    work = np.array([max(r[2], 1) for r in rows], dtype=float)
    fit_raw = fit_power_law(ks, raw)
    fit_work = fit_power_law(ks, work)
    speedup = raw[0] / raw
    linear = ks / ks[0]
    table = format_table(
        ["k", "rounds", "work", "phases", "speedup", "speedup/linear"],
        [
            (r[0], r[1], r[2], r[3], float(s), float(s / l))
            for r, s, l in zip(rows, speedup, linear)
        ],
        title=f"Theorem 1 - connectivity rounds vs k (n={n}, m={3*n})",
    )
    table += (
        f"\nfit: rounds ~ k^{fit_raw.exponent:.2f} (R^2={fit_raw.r_squared:.3f});"
        f" work ~ k^{fit_work.exponent:.2f} (R^2={fit_work.r_squared:.3f})"
        f"\npaper: O~(n/k^2) -> superlinear speedup in k (prior bound O~(n/k) is linear)"
    )
    report("T1_rounds_vs_k", table)
    benchmark.extra_info["exponent_raw"] = fit_raw.exponent
    benchmark.extra_info["exponent_work"] = fit_work.exponent
    # Superlinear speedup: strictly better than the linear O~(n/k) scaling.
    assert speedup[-1] > linear[-1]
    assert fit_raw.exponent < -1.05
    assert fit_work.exponent < -1.2


def test_rounds_vs_n(benchmark):
    k = 8
    bw = polylog_bandwidth(max(NS))
    session = session_for(seed=2, k=k, bandwidth_bits=bw)

    def sweep():
        reports = session.sweep(
            "connectivity",
            ns=NS,
            graph_factory=lambda n: generators.gnm_random(n, 3 * n, seed=2),
        )
        return [
            (r.graph["n"], r.rounds, r.work_rounds, r.result["phases"]) for r in reports
        ]

    rows = once(benchmark, sweep)
    ns = np.array([r[0] for r in rows], dtype=float)
    work = np.array([max(r[2], 1) for r in rows], dtype=float)
    fit = fit_power_law(ns, work)
    table = format_table(
        ["n", "rounds", "work", "phases"],
        rows,
        title=f"Theorem 1 - connectivity rounds vs n (k={k}, m=3n, fixed B={bw})",
    )
    table += (
        f"\nfit: work ~ n^{fit.exponent:.2f}  (R^2={fit.r_squared:.3f});"
        " paper: ~n^1 at fixed k (work term)"
    )
    report("T1_rounds_vs_n", table)
    benchmark.extra_info["exponent_work"] = fit.exponent
    assert 0.7 < fit.exponent < 1.3
