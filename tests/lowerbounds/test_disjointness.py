"""Tests for random-partition set disjointness instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowerbounds.disjointness import (
    is_disjoint,
    make_instance,
    trivial_protocol_bits,
)


class TestInstances:
    def test_forced_disjoint(self):
        for seed in range(10):
            inst = make_instance(50, seed=seed, intersecting=False)
            assert is_disjoint(inst.x, inst.y)

    def test_forced_intersecting(self):
        for seed in range(10):
            inst = make_instance(50, seed=seed, intersecting=True)
            assert not is_disjoint(inst.x, inst.y)

    def test_random_instances_bits_valid(self):
        inst = make_instance(100, seed=1)
        assert set(np.unique(inst.x)).issubset({0, 1})
        assert set(np.unique(inst.y)).issubset({0, 1})
        assert inst.b == 100

    def test_revelation_masks_half(self):
        inst = make_instance(10_000, seed=2)
        assert 0.45 < inst.y_known_to_alice.mean() < 0.55
        assert 0.45 < inst.x_known_to_bob.mean() < 0.55

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_instance(0)


class TestIsDisjoint:
    def test_cases(self):
        assert is_disjoint(np.array([1, 0]), np.array([0, 1]))
        assert not is_disjoint(np.array([1, 0]), np.array([1, 0]))
        assert is_disjoint(np.zeros(5, dtype=int), np.zeros(5, dtype=int))


class TestTrivialProtocol:
    def test_cost_near_half_b(self):
        inst = make_instance(10_000, seed=3)
        cost = trivial_protocol_bits(inst)
        assert 0.4 * 10_000 < cost < 0.6 * 10_000
