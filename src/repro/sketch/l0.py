"""Linear l0-sampling graph sketches (Section 2.3 of the paper, after [2, 17, 32]).

A sketch of a vector ``a in {-1,0,1}^(n^2)`` (an incidence vector, or a sum
of incidence vectors of a vertex set) consists of ``R`` independent
repetitions; each repetition assigns every edge slot a geometric *level*
(slot reaches level ``l`` with probability ``2^-l``) using a hash drawn
from a Theta(log n)-wise independent family, and maintains per level the
triple

* ``c`` — sum of surviving coefficients (signed count),
* ``s`` — sum of ``coefficient * slot_id`` (exact, signed),
* ``f`` — fingerprint ``sum coefficient * r^slot_id mod p`` with
  ``p = 2^61 - 1`` and per-repetition random base ``r``.

The triples are **linear** in the underlying vector, so the sketch of a
component is the entrywise sum of the sketches of its parts — the property
Lemma 2 exploits to combine part sketches at a proxy machine without
looking at any edges.

A level holding exactly one surviving slot (coefficient ``+-1``) is
recoverable: ``c in {-1, +1}`` and ``slot = c * s``; the fingerprint check
``f === c * r^slot (mod p)`` rejects multi-slot collisions with error
probability ``< 2^40 / 2^61`` per cell.  The zero vector is detected via
the level-0 fingerprints of all repetitions (level 0 retains every slot).

Exactness
---------
All accumulation is integer-exact: counts and id-sums use int64 (valid
whenever ``total_incidences * n^2 < 2^62``, enforced by
:class:`SketchSpec`), and mod-p fingerprint scatter-adds split values into
30-bit halves so intermediate sums never overflow (see
:func:`_modp_scatter_sum`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.edgespace import max_slot_bits
from repro.sketch.field import MERSENNE_P, addmod, mulmod, powmod
from repro.sketch.kwise import make_hash
from repro.util.rng import derive_seed

__all__ = ["SketchSpec", "SketchContext", "SketchBundle", "SampleResult"]

_P = np.uint64(MERSENNE_P)
_LOW30 = np.int64((1 << 30) - 1)
_TWO30 = np.uint64(1 << 30)


def _modp_scatter_sum(values: np.ndarray, signs: np.ndarray, idx: np.ndarray, n_out: int) -> np.ndarray:
    """Exact ``sum_j signs[j] * values[j] mod p`` grouped by ``idx``.

    ``values`` are in ``[0, p)``; a direct uint64 ``np.add.at`` would wrap
    mod 2^64 (not mod p) once more than 8 values land in a bin.  Splitting
    each value into 30-bit halves keeps both signed accumulators within
    int64 for up to ~2^32 contributions per bin.
    """
    v = values.astype(np.int64)
    lo = (v & _LOW30) * signs
    hi = (v >> np.int64(30)) * signs
    acc_lo = np.zeros(n_out, dtype=np.int64)
    acc_hi = np.zeros(n_out, dtype=np.int64)
    np.add.at(acc_lo, idx, lo)
    np.add.at(acc_hi, idx, hi)
    return _combine_halves(acc_lo, acc_hi)


def _combine_halves(acc_lo: np.ndarray, acc_hi: np.ndarray) -> np.ndarray:
    """Recombine signed 30-bit-split accumulators into values mod p."""
    p = np.int64(MERSENNE_P)
    lo_m = (acc_lo % p).astype(np.uint64)
    hi_m = (acc_hi % p).astype(np.uint64)
    return addmod(mulmod(hi_m, _TWO30), lo_m)


@dataclass(frozen=True)
class SketchSpec:
    """Parameters of one *phase sketch matrix* L_j (Section 2.3).

    A fresh spec (new ``seed``) is drawn for every phase of the
    connectivity algorithm and for every elimination iteration of the MST
    algorithm — mirroring the paper's per-phase sketch matrices.

    Attributes
    ----------
    n:
        Number of vertices (slot universe is ``[0, n^2)``).
    repetitions:
        Independent l0-sampler copies; each succeeds with constant
        probability, so failure decays geometrically.
    levels:
        Geometric levels per repetition (``max_slot_bits(n) + 2``
        by default, enough to isolate a single surviving slot).
    seed:
        Randomness key (level hashes and fingerprint bases derive from it).
    hash_family:
        ``'polynomial'`` for provable Theta(log n)-wise independence,
        ``'prf'`` for the fast keyed-PRF path (see DESIGN.md).
    """

    n: int
    repetitions: int
    levels: int
    seed: int
    hash_family: str = "polynomial"

    @staticmethod
    def for_graph(
        n: int,
        seed: int,
        repetitions: int = 6,
        hash_family: str = "polynomial",
    ) -> "SketchSpec":
        """Standard spec for an n-vertex graph."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if n > (1 << 20):
            raise ValueError(
                "n > 2^20 would overflow exact int64 id-sum accounting; "
                "see SketchSpec docstring"
            )
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        levels = max(4, max_slot_bits(n) + 2)
        return SketchSpec(
            n=n, repetitions=repetitions, levels=levels, seed=seed, hash_family=hash_family
        )

    @property
    def message_bits(self) -> int:
        """Bits one sketch occupies on a link (honest information content).

        Per level: count (<= 64 bits), id-sum (2*log2 n + overhead, charged
        64), fingerprint (61 bits, charged 64).  This is O(log^2 n) bits
        total, matching Lemma 2's O(polylog n).
        """
        return self.repetitions * self.levels * 3 * 64

    def fingerprint_base(self, rep: int) -> int:
        """The random evaluation point r for repetition ``rep`` (in [2, p))."""
        r = derive_seed(self.seed, 0xF1, rep) % (MERSENNE_P - 2) + 2
        return r


@dataclass
class SketchBundle:
    """Sketches of ``G`` groups: triples of shape ``(G, R, L)``.

    Supports the two linear operations the algorithms need: entrywise
    addition (:meth:`add`) and regrouping (:meth:`aggregate`), plus the
    query operations :meth:`sample` and :meth:`nonzero_mask`.
    """

    spec: SketchSpec
    counts: np.ndarray  # int64 (G, R, L)
    sums: np.ndarray  # int64 (G, R, L), exact signed slot-id sums
    fps: np.ndarray  # uint64 (G, R, L), values in [0, p)

    @property
    def n_groups(self) -> int:
        """Number of sketched groups."""
        return int(self.counts.shape[0])

    def add(self, other: "SketchBundle") -> "SketchBundle":
        """Entrywise sum (sketch linearity; groups must align)."""
        if other.spec != self.spec:
            raise ValueError("cannot add sketches with different specs")
        if other.counts.shape != self.counts.shape:
            raise ValueError("group shapes differ")
        return SketchBundle(
            spec=self.spec,
            counts=self.counts + other.counts,
            sums=self.sums + other.sums,
            fps=addmod(self.fps, other.fps),
        )

    def aggregate(self, group_map: np.ndarray, n_out: int) -> "SketchBundle":
        """Sum rows into ``n_out`` new groups: row g -> group_map[g].

        This is the proxy-side combination of Lemma 2: summing the part
        sketches of a component yields the component sketch.
        """
        gm = np.asarray(group_map, dtype=np.int64)
        if gm.shape != (self.n_groups,):
            raise ValueError("group_map must have one entry per group")
        r, l = self.spec.repetitions, self.spec.levels
        counts = np.zeros((n_out, r, l), dtype=np.int64)
        sums = np.zeros((n_out, r, l), dtype=np.int64)
        np.add.at(counts, gm, self.counts)
        np.add.at(sums, gm, self.sums)
        # Fingerprints: 30-bit-split exact mod-p scatter.
        lo = np.zeros((n_out, r, l), dtype=np.int64)
        hi = np.zeros((n_out, r, l), dtype=np.int64)
        f_i = self.fps.astype(np.int64)
        np.add.at(lo, gm, f_i & _LOW30)
        np.add.at(hi, gm, f_i >> np.int64(30))
        return SketchBundle(self.spec, counts, sums, _combine_halves(lo, hi))

    # -- queries -----------------------------------------------------------

    def nonzero_mask(self) -> np.ndarray:
        """Per group: True if the sketched vector is (w.h.p.) nonzero.

        Level 0 of every repetition retains all slots, so the vector is
        zero iff every repetition's level-0 fingerprint vanishes.  A false
        'zero' requires all R level-0 fingerprints of a nonzero polynomial
        to vanish simultaneously.
        """
        return np.any(self.fps[:, :, 0] != 0, axis=1)

    def sample(self) -> "SampleResult":
        """Recover one surviving slot per group where possible.

        Scans all (repetition, level) cells for verified one-sparse
        recoveries and returns, per group, the recovery from the deepest
        valid level of the first succeeding repetition (deep levels have
        the fewest survivors, giving the closest-to-uniform choice).
        """
        g, r, l = self.counts.shape
        c = self.counts
        cand = np.abs(c) == 1
        slots_all = self.sums * c  # c in {-1,+1} on candidate cells
        n2 = np.int64(self.spec.n) * np.int64(self.spec.n)
        cand &= (slots_all >= 0) & (slots_all < n2)
        found = np.zeros(g, dtype=bool)
        out_slot = np.full(g, -1, dtype=np.int64)
        out_sign = np.zeros(g, dtype=np.int64)
        if not cand.any():
            return SampleResult(found, out_slot, out_sign)
        gi, ri, li = np.nonzero(cand)
        slots = slots_all[gi, ri, li].astype(np.uint64)
        signs = c[gi, ri, li]
        fps = self.fps[gi, ri, li]
        # Verify fingerprints per candidate, batched by repetition (the
        # base r differs across repetitions).
        ok = np.zeros(gi.size, dtype=bool)
        bits = max_slot_bits(self.spec.n)
        for rep in range(r):
            sel = ri == rep
            if not sel.any():
                continue
            base = np.uint64(self.spec.fingerprint_base(rep))
            expected = powmod(base, slots[sel], max_exp_bits=bits)
            neg = signs[sel] < 0
            exp_signed = expected.copy()
            exp_signed[neg] = (_P - expected[neg]) % _P
            ok[sel] = fps[sel] == exp_signed
        if not ok.any():
            return SampleResult(found, out_slot, out_sign)
        gi, ri, li, slots, signs = gi[ok], ri[ok], li[ok], slots[ok], signs[ok]
        # Order candidates: repetition ascending, level descending; take the
        # first per group.
        order = np.lexsort(((l - 1 - li), ri, gi))
        gi_o = gi[order]
        first = np.ones(gi_o.size, dtype=bool)
        first[1:] = gi_o[1:] != gi_o[:-1]
        pick = order[first]
        found[gi[pick]] = True
        out_slot[gi[pick]] = slots[pick].astype(np.int64)
        out_sign[gi[pick]] = signs[pick]
        return SampleResult(found, out_slot, out_sign)


@dataclass(frozen=True)
class SampleResult:
    """Per-group l0-sample outcome.

    Attributes
    ----------
    found:
        ``bool[G]``; True where a verified recovery succeeded.
    slots:
        ``int64[G]``; recovered canonical slot id (-1 where not found).
    signs:
        ``int64[G]``; +1 if the *smaller* slot endpoint lies inside the
        sketched vertex set, -1 if the larger one does, 0 where not found.
    """

    found: np.ndarray
    slots: np.ndarray
    signs: np.ndarray


class SketchContext:
    """Per-phase randomness evaluated once over a fixed incidence list.

    The graph's incidence list (slot, sign) never changes; only the group
    assignment (component labels) and the sketch randomness (per phase) do.
    ``SketchContext`` therefore precomputes, per repetition, each
    incidence's sampling level and fingerprint contribution, after which
    *any* grouping can be sketched with three scatter-adds
    (:meth:`group_sums`).  This keeps per-phase work O(R * E) with small
    constants — the optimization that makes large sweeps feasible.

    In model terms each machine computes this context restricted to its own
    incidences; because the computation is pointwise over incidences, the
    global precomputation used here is exactly the union of the local ones
    (no information crosses machines).
    """

    def __init__(self, spec: SketchSpec, slots: np.ndarray, signs: np.ndarray) -> None:
        self.spec = spec
        self.slots = np.asarray(slots, dtype=np.uint64)
        self.signs = np.asarray(signs, dtype=np.int64)
        if self.slots.shape != self.signs.shape or self.slots.ndim != 1:
            raise ValueError("slots and signs must be 1-D of equal length")
        e = self.slots.size
        r, l = spec.repetitions, spec.levels
        self.depths = np.empty((r, e), dtype=np.int64)
        self.fp_contrib = np.empty((r, e), dtype=np.uint64)
        bits = max_slot_bits(spec.n)
        # Descending thresholds T[l] = p >> l; depth = (#thresholds > h) - 1.
        thresholds = MERSENNE_P >> np.arange(l, dtype=np.uint64)
        asc = thresholds[::-1].copy()
        for rep in range(r):
            h = make_hash(
                derive_seed(spec.seed, 0x1E, rep), independence=bits + 4, family=spec.hash_family
            ).values(self.slots)
            gt = l - np.searchsorted(asc, h, side="right")
            self.depths[rep] = np.clip(gt - 1, 0, l - 1)
            self.fp_contrib[rep] = self._slot_powers(rep)

    def _slot_powers(self, rep: int) -> np.ndarray:
        """r^slot mod p for every incidence, via two n-sized power tables.

        ``slot = x*n + y`` with ``x, y < n`` gives
        ``r^slot = (r^n)^x * r^y``; building both tables costs O(n)
        mulmods (doubling construction) instead of O(E log n) powmods.
        """
        n = self.spec.n
        base = np.uint64(self.spec.fingerprint_base(rep))
        table_low = _power_table(base, n)
        r_n = table_low[-1] if n >= 1 else np.uint64(1)
        r_n = mulmod(r_n, base)  # table_low[-1] = r^(n-1) -> r^n
        table_high = _power_table(np.uint64(r_n), n)
        x = (self.slots // np.uint64(n)).astype(np.int64)
        y = (self.slots % np.uint64(n)).astype(np.int64)
        return mulmod(table_high[x], table_low[y])

    @property
    def n_incidences(self) -> int:
        """Number of (slot, sign) incidences in the context."""
        return int(self.slots.size)

    def group_sums(
        self,
        group_idx: np.ndarray,
        n_groups: int,
        mask: np.ndarray | None = None,
    ) -> SketchBundle:
        """Sketch every group: incidence i contributes to group ``group_idx[i]``.

        ``mask`` (optional) drops incidences — used by the MST edge
        elimination, which zeroes out slots whose edge weight exceeds the
        current threshold (Section 3.1).
        """
        gi = np.asarray(group_idx, dtype=np.int64)
        if gi.shape != self.slots.shape:
            raise ValueError("group_idx must have one entry per incidence")
        sel = np.arange(gi.size) if mask is None else np.nonzero(np.asarray(mask, dtype=bool))[0]
        r, l = self.spec.repetitions, self.spec.levels
        counts = np.zeros((n_groups, r, l), dtype=np.int64)
        sums = np.zeros((n_groups, r, l), dtype=np.int64)
        fps_lo = np.zeros((n_groups, r, l), dtype=np.int64)
        fps_hi = np.zeros((n_groups, r, l), dtype=np.int64)
        g_sel = gi[sel]
        sign_sel = self.signs[sel]
        slot_signed = self.slots[sel].astype(np.int64) * sign_sel
        for rep in range(r):
            d = self.depths[rep, sel]
            # Incidence at depth d lives in levels 0..d; accumulate into the
            # (group, depth) bin, then suffix-sum over the level axis below.
            flat = (g_sel * np.int64(r) + rep) * np.int64(l) + d
            np.add.at(counts.reshape(-1), flat, sign_sel)
            np.add.at(sums.reshape(-1), flat, slot_signed)
            f = self.fp_contrib[rep, sel].astype(np.int64)
            np.add.at(fps_lo.reshape(-1), flat, (f & _LOW30) * sign_sel)
            np.add.at(fps_hi.reshape(-1), flat, (f >> np.int64(30)) * sign_sel)
        # Suffix-cumulative over levels: level l = sum over depths >= l.
        counts = np.flip(np.cumsum(np.flip(counts, axis=2), axis=2), axis=2)
        sums = np.flip(np.cumsum(np.flip(sums, axis=2), axis=2), axis=2)
        fps_lo = np.flip(np.cumsum(np.flip(fps_lo, axis=2), axis=2), axis=2)
        fps_hi = np.flip(np.cumsum(np.flip(fps_hi, axis=2), axis=2), axis=2)
        return SketchBundle(self.spec, counts, sums, _combine_halves(fps_lo, fps_hi))


def _power_table(base: np.ndarray | int, size: int) -> np.ndarray:
    """``[base^0, base^1, ..., base^(size-1)] mod p`` by doubling.

    O(size) field multiplications across O(log size) vectorized passes.
    """
    if size < 1:
        return np.ones(1, dtype=np.uint64)
    table = np.ones(1, dtype=np.uint64)
    b = np.uint64(base)
    step = np.uint64(b)  # base^(len(table)) at each doubling
    while table.size < size:
        ext = mulmod(table, step)
        table = np.concatenate([table, ext])
        step = mulmod(step, step)
    return table[:size]
