"""O(log n)-approximate min-cut in O~(n/k^2) rounds (Theorem 3).

Section 3.2: sample edges with exponentially growing probabilities and test
connectivity, leveraging Karger's sampling theorem [18] — a graph with edge
connectivity lambda stays connected w.h.p. when edges survive independently
with probability p >= c ln(n) / lambda, and disconnects w.h.p. once
p << ln(n) / lambda.  Scanning p_i = 2^-i for i = 0, 1, ... and finding the
first level i* whose sampled subgraph disconnects brackets lambda within an
O(log n) factor:

    lambda_hat = 2^(i*) * ln n.

The sampling is a shared hash of the edge slot, so every machine knows
locally which of its edges survive — no communication beyond the
connectivity tests, whose rounds dominate (each O~(n/k^2), times
O(log m) levels, absorbed in the O~ notation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.core.connectivity import connected_components_distributed
from repro.runtime.config import SketchConfig, resolve_sketch
from repro.util.rng import SeedStream, derive_seed

__all__ = ["MinCutResult", "MinCutLevel", "mincut_approx_distributed"]


@dataclass(frozen=True)
class MinCutLevel:
    """Diagnostics of one sampling level."""

    level: int
    sample_probability: float
    edges_kept: int
    n_components: int
    rounds: int


@dataclass
class MinCutResult:
    """Output of the approximate min-cut algorithm.

    Attributes
    ----------
    estimate:
        ``lambda_hat = 2^(i*) * ln n`` — within an O(log n) factor of the
        true edge connectivity w.h.p. (and ``0`` for disconnected inputs).
    disconnect_level:
        The first sampling level i* whose subgraph disconnected.
    rounds:
        Total rounds across all connectivity tests.
    levels:
        Per-level diagnostics.
    """

    estimate: float
    disconnect_level: int
    rounds: int
    levels: list[MinCutLevel] = field(default_factory=list)


def mincut_approx_distributed(
    cluster: KMachineCluster,
    seed: int = 0,
    *,
    repetitions: int | None = None,
    hash_family: str | None = None,
    sketch: SketchConfig | None = None,
    max_levels: int | None = None,
    max_phases: int | None = None,
    charge_shared_randomness: bool = True,
) -> MinCutResult:
    """Run the Theorem-3 algorithm on ``cluster``; charges its ledger.

    This is the implementation behind the ``"mincut"`` registry entry (see
    :mod:`repro.runtime`); prefer ``Session.run("mincut", ...)`` for new
    code.  Sketch parameters follow the same explicit-kwargs-over-``sketch``
    precedence as the other core algorithms.

    The input is treated as unweighted (edge connectivity); weighted
    min-cut reduces to this by standard edge multiplication, which the
    experiments do not need.  ``max_phases`` and
    ``charge_shared_randomness`` apply to each internal per-level
    connectivity test.
    """
    repetitions, hash_family = resolve_sketch(sketch, repetitions, hash_family)
    n = cluster.n
    g = cluster.graph
    levels: list[MinCutLevel] = []
    budget = max_levels if max_levels is not None else max(2, math.ceil(math.log2(max(g.m, 2))) + 2)
    stream = SeedStream(derive_seed(seed, 0x3C07))
    slot_key = (g.edges_u.astype(np.uint64) * np.uint64(n) + g.edges_v.astype(np.uint64))
    u01 = stream.keyed_uniform(slot_key)
    disconnect_level = -1
    for i in range(budget):
        p = 2.0**-i
        mask = u01 < p
        sub = cluster.with_graph(g.subgraph(mask))
        res = connected_components_distributed(
            sub,
            seed=derive_seed(seed, 0xC17, i),
            repetitions=repetitions,
            hash_family=hash_family,
            max_phases=max_phases,
            charge_shared_randomness=charge_shared_randomness,
        )
        cluster.ledger.merge_from(sub.ledger)
        levels.append(
            MinCutLevel(
                level=i,
                sample_probability=p,
                edges_kept=int(mask.sum()),
                n_components=res.n_components,
                rounds=res.rounds,
            )
        )
        if res.n_components > 1:
            disconnect_level = i
            break
    if disconnect_level < 0:
        # Never disconnected within budget: min cut exceeds the scan range.
        disconnect_level = budget
    if levels and levels[0].n_components > 1:
        estimate = 0.0  # the input graph itself is disconnected
    else:
        estimate = (2.0**disconnect_level) * math.log(max(n, 2))
    return MinCutResult(
        estimate=estimate,
        disconnect_level=disconnect_level,
        rounds=cluster.ledger.total_rounds,
        levels=levels,
    )
