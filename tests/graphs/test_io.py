"""Tests for repro.graphs.io round-tripping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.io import load_edgelist, save_edgelist


def test_roundtrip_unweighted(tmp_path):
    g = gen.gnm_random(30, 80, seed=1)
    p = tmp_path / "g.edges"
    save_edgelist(g, p)
    g2 = load_edgelist(p)
    assert g2.n == g.n and g2.m == g.m
    assert np.array_equal(g2.edges_u, g.edges_u)
    assert np.array_equal(g2.edges_v, g.edges_v)
    assert not g2.weighted


def test_roundtrip_weighted(tmp_path):
    g = gen.with_unique_weights(gen.gnm_random(20, 50, seed=2), seed=2)
    p = tmp_path / "g.edges"
    save_edgelist(g, p)
    g2 = load_edgelist(p)
    assert g2.weighted
    assert np.allclose(g2.weights, g.weights)


def test_roundtrip_empty(tmp_path):
    g = gen.disjoint_union([gen.path_graph(1), gen.path_graph(1)])
    p = tmp_path / "empty.edges"
    save_edgelist(g, p)
    g2 = load_edgelist(p)
    assert g2.n == 2 and g2.m == 0


def test_bad_header(tmp_path):
    p = tmp_path / "bad.edges"
    p.write_text("not a header\n")
    with pytest.raises(ValueError):
        load_edgelist(p)
