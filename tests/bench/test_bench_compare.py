"""Comparator pass/fail behaviour: the perf gate's contract."""

from __future__ import annotations

import copy

import pytest

from repro.bench import (
    BenchResult,
    CellResult,
    Thresholds,
    compare_files,
    compare_paths,
    compare_results,
)


def _baseline() -> BenchResult:
    return BenchResult(
        bench="demo",
        title="demo bench",
        tier="quick",
        seed=0,
        environment={"python": "3.x"},
        cells=[
            CellResult(
                params={"n": 4},
                metrics={"rounds": 10, "total_bits": 1000, "correct": True},
                wall_time_s=1.0,
            ),
            CellResult(
                params={"n": 8},
                metrics={"rounds": 20, "total_bits": 4000, "correct": True},
                wall_time_s=2.0,
            ),
        ],
    )


def test_identical_results_pass():
    cmp = compare_results(_baseline(), _baseline())
    assert cmp.ok
    assert cmp.cells_compared == 2
    assert "OK" in cmp.render()


def test_rounds_regression_fails_exact_gate():
    cur = _baseline()
    cur.cells[0].metrics["rounds"] = 11
    cmp = compare_results(_baseline(), cur)
    assert not cmp.ok
    assert any(d.metric == "rounds" for d in cmp.regressions)


def test_improvement_also_fails_exact_gate():
    # Exact-match means a *stale baseline* is surfaced even when the drift
    # is an improvement; regenerate the artifact to acknowledge it.
    cur = _baseline()
    cur.cells[0].metrics["rounds"] = 9
    assert not compare_results(_baseline(), cur).ok


def test_rel_tol_allows_small_numeric_drift():
    cur = _baseline()
    cur.cells[0].metrics["total_bits"] = 1040  # +4%
    assert not compare_results(_baseline(), cur).ok
    assert compare_results(_baseline(), cur, Thresholds(metric_rel_tol=0.05)).ok
    # Booleans never get tolerance.
    cur2 = _baseline()
    cur2.cells[0].metrics["correct"] = False
    assert not compare_results(_baseline(), cur2, Thresholds(metric_rel_tol=0.5)).ok


def test_type_drift_is_a_regression_even_with_rel_tol():
    # A metric that changes type (number -> string/None) must report as a
    # regression, not crash float() inside the tolerance comparison.
    for drifted in ("11", None):
        cur = _baseline()
        cur.cells[0].metrics["rounds"] = drifted
        cmp = compare_results(_baseline(), cur, Thresholds(metric_rel_tol=0.5))
        assert not cmp.ok
        assert any(d.metric == "rounds" for d in cmp.regressions)


def test_wall_time_gated_only_on_request():
    cur = _baseline()
    cur.cells[0].wall_time_s = 10.0  # 10x slower
    assert compare_results(_baseline(), cur).ok, "wall time ignored by default"
    cmp = compare_results(_baseline(), cur, Thresholds(wall_rel_tol=0.5))
    assert not cmp.ok
    assert any(d.metric == "wall_time_s" for d in cmp.regressions)
    # Within tolerance passes.
    cur.cells[0].wall_time_s = 1.2
    assert compare_results(_baseline(), cur, Thresholds(wall_rel_tol=0.5)).ok


def test_missing_cell_fails_new_cell_warns():
    cur = _baseline()
    dropped = cur.cells.pop(0)
    cmp = compare_results(_baseline(), cur)
    assert not cmp.ok
    assert any(d.note == "cell lost" for d in cmp.regressions)

    grown = _baseline()
    grown.cells.append(
        CellResult(params={"n": 16}, metrics={"rounds": 40}, wall_time_s=4.0)
    )
    cmp2 = compare_results(_baseline(), grown)
    assert cmp2.ok
    assert any(d.note == "new cell" for d in cmp2.warnings)
    del dropped


def test_metric_lost_fails_new_metric_warns():
    cur = _baseline()
    del cur.cells[0].metrics["total_bits"]
    cur.cells[1].metrics["extra"] = 1
    cmp = compare_results(_baseline(), cur)
    assert any(d.note == "metric lost" for d in cmp.regressions)
    assert any(d.note == "new metric" for d in cmp.warnings)


def test_envelope_mismatches_fail():
    cur = copy.deepcopy(_baseline())
    cur.tier = "full"
    assert not compare_results(_baseline(), cur).ok
    other = _baseline()
    other.bench = "other"
    assert not compare_results(_baseline(), other).ok


def test_compare_files_and_dirs(tmp_path):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    base = _baseline()
    cur = _baseline()
    base.write(base_dir)
    cur.write(cur_dir)
    assert compare_files(base_dir / base.filename, cur_dir / cur.filename).ok
    comparisons = compare_paths(base_dir, cur_dir)
    assert len(comparisons) == 1 and comparisons[0].ok

    # A baseline artifact missing from current is a lost-coverage failure.
    extra = _baseline()
    extra.bench = "demo_two"
    extra.write(base_dir)
    comparisons = compare_paths(base_dir, cur_dir)
    assert len(comparisons) == 2
    assert any(not c.ok for c in comparisons)


def test_compare_paths_rejects_mixed_modes(tmp_path):
    base = _baseline()
    path = base.write(tmp_path)
    with pytest.raises(ValueError, match="both"):
        compare_paths(path, tmp_path)
    (tmp_path / "empty_a").mkdir()
    (tmp_path / "empty_b").mkdir()
    with pytest.raises(ValueError, match="no BENCH"):
        compare_paths(tmp_path / "empty_a", tmp_path / "empty_b")
