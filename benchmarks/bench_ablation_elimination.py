"""AB-6 — MST edge-elimination budget t.

Section 3.1 repeats the eliminate-and-resample step t = Theta(log n)
times so the selected edge is the true MWOE w.h.p.; too small a budget
yields spanning trees that are not minimum.  This ablation sweeps the
fixed budget and reports the weight error vs the exact MST, plus the
certified fixpoint mode (our default) as the reference point.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import once, report
from repro import KMachineCluster, generators, minimum_spanning_tree_distributed
from repro.analysis import format_table
from repro.graphs import reference as ref


def test_elimination_budget(benchmark):
    n = 512
    g = generators.with_unique_weights(generators.gnm_random(n, 6 * n, seed=31), seed=31)
    opt = ref.mst_weight(g, ref.kruskal_mst(g))

    def sweep():
        rows = []
        for budget in (1, 2, 4, 8, 16):
            errors = []
            for seed in range(3):
                cl = KMachineCluster.create(g, k=8, seed=seed)
                res = minimum_spanning_tree_distributed(
                    cl, seed=seed, strict_elimination_budget=budget
                )
                assert res.n_edges == n - 1, "must always span"
                errors.append((res.total_weight - opt) / opt)
            rows.append((str(budget), float(np.mean(errors)), float(np.max(errors))))
        # The certified fixpoint mode (paper's w.h.p. guarantee, verified).
        cl = KMachineCluster.create(g, k=8, seed=0)
        res = minimum_spanning_tree_distributed(cl, seed=0)
        rows.append(("fixpoint", (res.total_weight - opt) / opt, 0.0))
        return rows

    rows = once(benchmark, sweep)
    table = format_table(
        ["elimination budget t", "mean weight error", "max weight error"],
        rows,
        title=f"Ablation 6 - MST quality vs elimination budget (n={n}, m={6*n}, k=8)",
    )
    table += "\npaper: t = Theta(log n) eliminations give the exact MWOE w.h.p."
    report("AB6_elimination", table)
    errs = [r[1] for r in rows]
    assert errs[0] > 0, "a single sample is almost surely not the MWOE"
    assert errs[-2] <= errs[0], "error shrinks with budget"
    assert abs(errs[-1]) < 1e-12, "fixpoint mode is exact"
    # t = 16 ~ 2 log2 n is enough for near-exactness.
    assert rows[-2][2] < 0.01
