"""Cross-layer consistency checks spanning verify/core/cluster plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import KMachineCluster
from repro.core import connected_components_distributed, verify
from repro.graphs import generators as gen
from repro.graphs import reference as ref


class TestKwargsPassthrough:
    def test_verify_accepts_sketch_options(self):
        # The verification wrappers forward algorithm kwargs unchanged.
        g = gen.gnm_random(60, 200, seed=1)
        cl = KMachineCluster.create(g, k=4, seed=1)
        res = verify.st_connectivity(
            cl, 0, 1, seed=1, repetitions=4, hash_family="polynomial"
        )
        assert res.answer == ref.st_connected(g, 0, 1)

    def test_mincut_passthrough(self):
        from repro.core import mincut_approx_distributed

        g = gen.planted_cut_graph(80, cut_size=2, inner_degree=8, seed=2)
        cl = KMachineCluster.create(g, k=4, seed=2)
        res = mincut_approx_distributed(cl, seed=2, repetitions=4)
        assert res.estimate > 0


class TestLedgerConsistency:
    def test_rounds_equal_sum_of_steps(self, cluster8):
        res = connected_components_distributed(cluster8, seed=3)
        assert res.rounds == sum(s.rounds for s in cluster8.ledger.steps)

    def test_sent_equals_received_globally(self, cluster8):
        connected_components_distributed(cluster8, seed=4)
        assert cluster8.ledger.sent_bits.sum() == cluster8.ledger.received_bits.sum()
        assert cluster8.ledger.sent_bits.sum() == cluster8.ledger.load_total.sum()

    def test_phase_rounds_partition_total(self, cluster8):
        res = connected_components_distributed(cluster8, seed=5)
        assert sum(s.rounds for s in res.phase_stats) == res.rounds

    def test_cut_bits_bounded_by_total(self, cluster8):
        connected_components_distributed(cluster8, seed=6)
        total = cluster8.ledger.total_bits
        cut = cluster8.ledger.cut_bits(np.array([0, 1, 2, 3]))
        assert 0 <= cut <= total


class TestVerifyDoesNotMutateInputCluster:
    def test_graph_unchanged(self):
        g = gen.gnm_random(50, 150, seed=7)
        cl = KMachineCluster.create(g, k=4, seed=7)
        m_before = cl.m
        edges_before = cl.graph.edges_u.copy()
        verify.cut_verification(cl, np.ones(cl.m, dtype=bool), seed=7)
        assert cl.m == m_before
        assert np.array_equal(cl.graph.edges_u, edges_before)

    def test_rounds_accumulate_across_queries(self):
        g = gen.gnm_random(50, 150, seed=8)
        cl = KMachineCluster.create(g, k=4, seed=8)
        r1 = verify.st_connectivity(cl, 0, 1, seed=8).rounds
        r2 = verify.st_connectivity(cl, 1, 2, seed=9).rounds
        assert cl.ledger.total_rounds == r1 + r2


class TestHashFamilyAgreement:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_families_agree_on_components(self, seed):
        g = gen.planted_components(120, 3, seed=seed)
        results = []
        for family in ("prf", "polynomial"):
            cl = KMachineCluster.create(g, k=4, seed=seed)
            res = connected_components_distributed(cl, seed=seed, hash_family=family)
            results.append(res.canonical())
        assert np.array_equal(results[0], results[1])
