"""AB-5 — provable k-wise polynomial hashing vs the SplitMix64 PRF fast path.

Thin wrapper over the registered ``ablation_hash_family`` grid (see
``repro.bench.suites.ablations``).  DESIGN.md's documented substitution:
the polynomial family is the paper's construction ([4, 5, 10]); the PRF
is ~an order of magnitude faster and must produce identical algorithm
*outcomes* (same components; rounds may differ slightly since the sampled
edges differ).  The harness times each cell, so the speed gap is read off
the per-cell wall times.
"""

from __future__ import annotations

from benchmarks._common import report, run_registered
from repro.analysis import format_table


def test_hash_families_equivalent(benchmark):
    result = run_registered(benchmark, "ablation_hash_family")
    cells = {c.params["family"]: c for c in result.cells}
    prf, poly = cells["prf"], cells["polynomial"]
    rows = [
        (fam, c.metrics["correct"], c.metrics["phases"], c.metrics["rounds"], c.wall_time_s)
        for fam, c in (("prf", prf), ("polynomial", poly))
    ]
    n = prf.params["n"]
    k = prf.params["k"]
    table = format_table(
        ["hash family", "correct", "phases", "rounds", "wall seconds"],
        rows,
        title=f"Ablation 5 - sketch hash family (n={n}, m={4*n}, k={k})",
    )
    table += (
        f"\nPRF speedup over polynomial: {poly.wall_time_s / prf.wall_time_s:.1f}x"
        " (identical answers)"
    )
    report("AB5_hash_family", table)
    assert all(r[1] for r in rows), "both families must produce correct components"
    assert poly.wall_time_s > prf.wall_time_s, "the polynomial family costs more wall time"
