"""The paper's algorithms: connectivity, MST, min-cut, verification.

* :mod:`repro.core.connectivity` — Theorem 1: O~(n/k^2)-round connected
  components via sketches + proxies + DRR.
* :mod:`repro.core.mst` — Theorem 2: MST with the edge-elimination MWOE
  loop; relaxed and strict output criteria.
* :mod:`repro.core.mincut` — Theorem 3: O(log n)-approximate min-cut.
* :mod:`repro.core.verify` — Theorem 4: eight verification problems.
* :mod:`repro.core.labels` / :mod:`repro.core.proxy` /
  :mod:`repro.core.outgoing` / :mod:`repro.core.drr` — the building blocks
  (component parts, proxy routing, sketch sampling, DRR merging).
"""

from repro.core import verify
from repro.core.connectivity import (
    ConnectivityResult,
    PhaseStats,
    component_sizes_distributed,
    connected_components_distributed,
    count_components_distributed,
)
from repro.core.drr import DRRForest, build_drr_forest, merge_forest
from repro.core.labels import PartIndex, canonical_labels, initial_labels
from repro.core.mincut import MinCutResult, mincut_approx_distributed
from repro.core.mst import MSTResult, minimum_spanning_tree_distributed
from repro.core.outgoing import OutgoingSelection, select_outgoing_edges
from repro.core.proxy import parts_to_proxies, proxies_to_parts, proxy_of_labels

__all__ = [
    "ConnectivityResult",
    "DRRForest",
    "MSTResult",
    "MinCutResult",
    "OutgoingSelection",
    "PartIndex",
    "PhaseStats",
    "build_drr_forest",
    "canonical_labels",
    "component_sizes_distributed",
    "connected_components_distributed",
    "count_components_distributed",
    "initial_labels",
    "merge_forest",
    "mincut_approx_distributed",
    "minimum_spanning_tree_distributed",
    "parts_to_proxies",
    "proxies_to_parts",
    "proxy_of_labels",
    "select_outgoing_edges",
    "verify",
]
