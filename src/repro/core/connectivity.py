"""The O~(n/k^2)-round connectivity algorithm (Theorem 1).

Boruvka-style phase structure (Section 2.1):

    repeat O(log n) times:
      1. distribute per-phase shared randomness from M1        (Sec. 2.2)
      2. every component samples one outgoing edge via linear
         sketches combined at random proxy machines            (Sec. 2.3-2.4)
      3. build the DRR forest over components and merge each
         tree level-wise, relabeling vertices                  (Sec. 2.5)
    until no component has an outgoing edge.

The run terminates after at most ``12 log2 n`` phases w.h.p. (Lemma 7);
each phase costs O~(n/k^2) rounds (Lemmas 1-6), all of which is *measured*
by the cluster's :class:`~repro.cluster.ledger.RoundLedger` rather than
asserted.

The sampled outgoing edges of non-root components form a spanning forest
of G; they are retained with their owning proxy machine, satisfying the
relaxed output criterion of Theorem 2(a) ("each edge is output by at least
one machine").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.cluster.shared_random import SharedRandomness
from repro.core.drr import build_drr_forest, charge_forest_build, merge_forest
from repro.core.labels import PartIndex, canonical_labels, initial_labels
from repro.core.outgoing import select_outgoing_edges, sketch_prune_default
from repro.core.proxy import proxy_of_labels
from repro.runtime.config import SketchConfig, resolve_sketch
from repro.util.bits import bits_for_id

__all__ = [
    "ConnectivityResult",
    "PhaseStats",
    "component_sizes_distributed",
    "connected_components_distributed",
    "count_components_distributed",
]


@dataclass(frozen=True)
class PhaseStats:
    """Diagnostics of one Boruvka phase (feeds the Lemma-6/7 experiments)."""

    phase: int
    components_start: int
    components_end: int
    edges_sampled: int
    drr_max_depth: int
    merge_iterations: int
    rounds: int


@dataclass
class ConnectivityResult:
    """Output of a distributed connectivity run.

    Attributes
    ----------
    labels:
        ``int64[n]``; final component label per vertex (two vertices share
        a label iff they are connected, w.h.p.).
    n_components:
        Number of distinct labels.
    rounds:
        Total simulated k-machine rounds.
    phases:
        Boruvka phases executed.
    converged:
        True if the algorithm reached the no-outgoing-edge fixpoint within
        the phase budget.
    forest_u / forest_v:
        Endpoints of the spanning-forest edges collected from merges.
    forest_machine:
        ``int64[F]``; the machine (component proxy) that output each
        forest edge — the relaxed output criterion.
    phase_stats:
        Per-phase diagnostics.
    """

    labels: np.ndarray
    n_components: int
    rounds: int
    phases: int
    converged: bool
    forest_u: np.ndarray
    forest_v: np.ndarray
    forest_machine: np.ndarray
    phase_stats: list[PhaseStats] = field(default_factory=list)

    def canonical(self) -> np.ndarray:
        """Labels normalized to min-vertex-id per component (for comparisons)."""
        return canonical_labels(self.labels)

    def spanning_forest(self):
        """The collected merge edges as a :class:`~repro.graphs.graph.Graph`.

        The forest spans every component (same component structure as the
        input graph) and is cycle-free — the Theorem 2(a) output object.
        """
        from repro.graphs.graph import Graph

        return Graph.from_edges(self.labels.size, self.forest_u, self.forest_v)


def _charge_termination_check(cluster: KMachineCluster, phase: int) -> int:
    """All machines report a local 1-bit 'any component sampled an edge?'
    flag to M1, which broadcasts the verdict — O(1) rounds.

    Proxy machines hold the per-component outcomes, so the OR-aggregation
    is local before the k-1 single-bit messages are sent.
    """
    k = cluster.k
    up = CommStep(cluster.ledger, f"termination:phase-{phase}")
    others = np.arange(1, k, dtype=np.int64)
    up.add(others, 0, 1)
    rounds = up.deliver()
    down = CommStep(cluster.ledger, f"termination-bcast:phase-{phase}")
    down.add(0, others, 1)
    return rounds + down.deliver()


def connected_components_distributed(
    cluster: KMachineCluster,
    seed: int = 0,
    *,
    repetitions: int | None = None,
    hash_family: str | None = None,
    sketch: SketchConfig | None = None,
    max_phases: int | None = None,
    charge_shared_randomness: bool = True,
) -> ConnectivityResult:
    """Run the Theorem-1 algorithm on ``cluster``; charges its ledger.

    This is the implementation behind the ``"connectivity"`` registry entry
    (see :mod:`repro.runtime`); prefer ``Session.run("connectivity", ...)``
    for new code — it adds config provenance and the RunReport envelope.

    Parameters
    ----------
    cluster:
        The distributed input (graph + partition + topology + ledger).
    seed:
        Master seed of M1's shared randomness.
    repetitions / hash_family / sketch:
        Sketch parameters, either as explicit kwargs or one
        :class:`~repro.runtime.config.SketchConfig` (explicit kwargs win);
        ``'polynomial'`` gives the provable Theta(log n)-wise independent
        construction, ``'prf'`` the fast path (ablation-verified, see
        DESIGN.md).
    max_phases:
        Phase budget; defaults to the Lemma-7 bound ``ceil(12 log2 n)``.
    charge_shared_randomness:
        Charge the per-phase Section-2.2 dissemination (disable only in
        ablations isolating other cost terms).
    """
    repetitions, hash_family = resolve_sketch(sketch, repetitions, hash_family)
    n, k = cluster.n, cluster.k
    shared = SharedRandomness(master_seed=seed, n=n, k=k)
    labels = initial_labels(n)
    budget = max_phases if max_phases is not None else max(1, math.ceil(12 * math.log2(max(n, 2))))
    stats: list[PhaseStats] = []
    forest_u: list[np.ndarray] = []
    forest_v: list[np.ndarray] = []
    forest_m: list[np.ndarray] = []
    converged = False
    phases = 0
    # Retry phases leave the labels untouched, so the part structure (and
    # the incidence -> part mapping) is provably identical to the previous
    # phase's; both are rebuilt only after a merge actually changed the
    # labels (DESIGN.md §9).
    parts: PartIndex | None = None
    inc_part: np.ndarray | None = None
    inc_cross: np.ndarray | None = None
    prune = sketch_prune_default()
    # Initial labels are the vertex ids, so the pre-loop component count
    # is exactly n (keeps a max_phases=0 call honest without an upfront
    # np.unique pass).
    n_components = int(labels.size)
    for phase in range(1, budget + 1):
        phases = phase
        rounds_before = cluster.ledger.total_rounds
        if charge_shared_randomness:
            shared.charge_phase_distribution(cluster.ledger, phase)
        if parts is None:
            parts = PartIndex.build(labels, cluster.partition)
            inc_part = parts.part_of_vertex[cluster.inc_owner]
            if prune:
                inc_cross = labels[cluster.inc_owner] != labels[cluster.inc_other]
            n_components = parts.n_components
        selection = select_outgoing_edges(
            cluster,
            shared,
            labels,
            phase,
            parts=parts,
            inc_part=inc_part,
            repetitions=repetitions,
            hash_family=hash_family,
            prune=prune,
            inc_cross=inc_cross,
        )
        _charge_termination_check(cluster, phase)
        if not selection.sketch_nonzero.any():
            # Every component's sketch is the zero vector: no outgoing
            # edges remain (w.h.p.), so the labels are final.  Note this is
            # deliberately *not* ``found.any()``: recovery can fail on a
            # nonzero sketch (the l0-sampler's constant failure probability
            # per repetition), in which case the phase simply retries with
            # fresh randomness rather than terminating early.
            converged = True
            stats.append(
                PhaseStats(
                    phase=phase,
                    components_start=parts.n_components,
                    components_end=parts.n_components,
                    edges_sampled=0,
                    drr_max_depth=0,
                    merge_iterations=0,
                    rounds=cluster.ledger.total_rounds - rounds_before,
                )
            )
            break
        if not selection.found.any():
            # Outgoing edges exist but every sample failed this phase;
            # record the (wasted) phase and retry.
            stats.append(
                PhaseStats(
                    phase=phase,
                    components_start=parts.n_components,
                    components_end=parts.n_components,
                    edges_sampled=0,
                    drr_max_depth=0,
                    merge_iterations=0,
                    rounds=cluster.ledger.total_rounds - rounds_before,
                )
            )
            continue
        forest = build_drr_forest(parts, selection, shared.rank_stream(phase))
        charge_forest_build(cluster, selection, forest, phase)
        # Record the merge edges (non-root components' sampled edges): the
        # proxies already hold them, giving the relaxed output criterion.
        kids = np.nonzero(forest.parent >= 0)[0]
        if kids.size:
            forest_u.append(selection.internal_vertex[kids])
            forest_v.append(selection.foreign_vertex[kids])
            forest_m.append(selection.comp_proxy[kids])
        merge = merge_forest(cluster, shared, labels, forest, phase)
        labels = merge.labels
        # One np.unique per merge: components_end here, n_components after
        # the loop, and next phase's PartIndex all share this count.
        n_components = int(np.unique(labels).size)
        stats.append(
            PhaseStats(
                phase=phase,
                components_start=parts.n_components,
                components_end=n_components,
                edges_sampled=int(selection.found.sum()),
                drr_max_depth=forest.max_depth,
                merge_iterations=merge.iterations,
                rounds=cluster.ledger.total_rounds - rounds_before,
            )
        )
        parts = None  # labels changed: rebuild the part structure next phase
        inc_part = None
        inc_cross = None
    fu = np.concatenate(forest_u) if forest_u else np.empty(0, dtype=np.int64)
    fv = np.concatenate(forest_v) if forest_v else np.empty(0, dtype=np.int64)
    fm = np.concatenate(forest_m) if forest_m else np.empty(0, dtype=np.int64)
    return ConnectivityResult(
        labels=labels,
        n_components=n_components,
        rounds=cluster.ledger.total_rounds,
        phases=phases,
        converged=converged,
        forest_u=fu,
        forest_v=fv,
        forest_machine=fm,
        phase_stats=stats,
    )


def component_sizes_distributed(
    cluster: KMachineCluster, seed: int = 0, **kwargs: object
) -> tuple[dict[int, int], ConnectivityResult]:
    """Component sizes via the proxy-aggregation pattern of Section 2.6.

    After connectivity stabilizes, each machine sends, per component part
    it hosts, the part's vertex count to the component's proxy
    (O~(n/k^2) rounds by Lemma 1); proxies sum the counts and forward one
    (label, size) pair each to M1.  Returns ``{label: size}`` plus the
    underlying connectivity result.
    """
    result = connected_components_distributed(cluster, seed, **kwargs)  # type: ignore[arg-type]
    shared = SharedRandomness(master_seed=seed, n=cluster.n, k=cluster.k)
    parts = PartIndex.build(result.labels, cluster.partition)
    stream = shared.proxy_stream(0, 1)
    comp_proxy = proxy_of_labels(stream, parts.comp_labels, cluster.k)
    count_bits = bits_for_id(max(cluster.n, 2))
    up = CommStep(cluster.ledger, "sizes:part-to-proxy")
    up.add(parts.part_machine, comp_proxy[parts.comp_of_part], 2 * count_bits)
    up.deliver()
    fwd = CommStep(cluster.ledger, "sizes:proxy-to-m1")
    fwd.add(comp_proxy, 0, 2 * count_bits)
    fwd.deliver()
    sizes = np.bincount(parts.comp_of_vertex, minlength=parts.n_components)
    result.rounds = cluster.ledger.total_rounds
    return {
        int(lab): int(sz) for lab, sz in zip(parts.comp_labels, sizes)
    }, result


def count_components_distributed(
    cluster: KMachineCluster, seed: int = 0, **kwargs: object
) -> tuple[int, ConnectivityResult]:
    """The Section-2.6 component-counting protocol on top of connectivity.

    After the labels stabilize, every machine sends "YES" to the proxy of
    each label it hosts; proxies forward the distinct labels they heard to
    machine M1, which outputs the count.  Both steps are charged.
    """
    result = connected_components_distributed(cluster, seed, **kwargs)  # type: ignore[arg-type]
    shared = SharedRandomness(master_seed=seed, n=cluster.n, k=cluster.k)
    parts = PartIndex.build(result.labels, cluster.partition)
    stream = shared.proxy_stream(0, 0)
    comp_proxy = proxy_of_labels(stream, parts.comp_labels, cluster.k)
    label_bits = bits_for_id(max(cluster.n, 2))
    yes = CommStep(cluster.ledger, "count:yes-to-proxy")
    yes.add(parts.part_machine, comp_proxy[parts.comp_of_part], label_bits)
    yes.deliver()
    fwd = CommStep(cluster.ledger, "count:proxy-to-m1")
    fwd.add(comp_proxy, 0, label_bits)
    fwd.deliver()
    result.rounds = cluster.ledger.total_rounds
    return result.n_components, result
