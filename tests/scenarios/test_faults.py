"""Unit tests for the fault layer: plans, models, ledger and engine weaving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterTopology, RoundLedger, SyncEngine
from repro.cluster.engine import Envelope, RoundLimitExceeded
from repro.protocols.leader import LeaderElectionProgram
from repro.scenarios.faults import FaultModel, FaultPlan


class TestFaultPlan:
    def test_defaults_are_benign(self):
        plan = FaultPlan().validate()
        assert plan.is_benign

    def test_any_axis_breaks_benign(self):
        assert not FaultPlan(drop_prob=0.1).is_benign
        assert not FaultPlan(bandwidth_factor=0.5).is_benign
        assert not FaultPlan(stall_prob=0.1, max_stall_rounds=1).is_benign

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": 1.0},
            {"drop_prob": -0.1},
            {"dup_prob": 2.0},
            {"bandwidth_factor": 0.0},
            {"bandwidth_factor": 1.5},
            {"max_stall_rounds": -1},
            {"stall_prob": 0.5},  # needs max_stall_rounds >= 1
            {"delay_prob": 0.5},  # needs max_delay_rounds >= 1
            {"seed": "nope"},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs).validate()

    def test_dict_round_trip(self):
        plan = FaultPlan(drop_prob=0.1, stall_prob=0.2, max_stall_rounds=2, seed=9)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            FaultPlan.from_dict({"drop_rate": 0.1})


class TestFaultModel:
    def test_deterministic_step_sequence(self):
        plan = FaultPlan(drop_prob=0.3, stall_prob=0.2, max_stall_rounds=2)
        a = FaultModel(plan, run_seed=5)
        b = FaultModel(plan, run_seed=5)
        for _ in range(20):
            ra = a.apply("s", base_rounds=10, throttle_rounds=0, k=4)
            rb = b.apply("s", base_rounds=10, throttle_rounds=0, k=4)
            assert ra == rb
        assert a.totals() == b.totals()

    def test_plan_seed_overrides_run_seed(self):
        plan = FaultPlan(drop_prob=0.3, seed=77)
        a = FaultModel(plan, run_seed=1)
        b = FaultModel(plan, run_seed=2)
        assert a.apply("s", 50, 0, 4) == b.apply("s", 50, 0, 4)

    def test_empty_steps_are_fault_free_but_advance_schedule(self):
        plan = FaultPlan(drop_prob=0.5)
        model = FaultModel(plan, run_seed=0)
        assert model.apply("s", base_rounds=0, throttle_rounds=0, k=4) is None
        assert model.totals()["n_events"] == 0
        # An empty step consumes a schedule slot: the next busy step draws
        # what a fresh model's *second* step would have drawn.
        other = FaultModel(plan, run_seed=0)
        other.apply("pad", 0, 0, 4)
        assert model.apply("s", 30, 0, 4) == other.apply("s", 30, 0, 4)

    def test_throttle_bandwidth_floor(self):
        model = FaultModel(FaultPlan(bandwidth_factor=0.25), run_seed=0)
        assert model.effective_bandwidth(1000) == 250
        assert model.effective_bandwidth(2) == 1  # never below 1 bit/round

    def test_shared_model_spans_ledgers(self):
        # One model attached to two ledgers (the with_graph pattern used
        # by min-cut/verification) keeps one global, monotone schedule.
        model = FaultModel(FaultPlan(drop_prob=0.4), run_seed=3)
        topo = ClusterTopology(k=3, bandwidth_bits=8)
        parent, child = RoundLedger(topo), RoundLedger(topo)
        parent.attach_faults(model)
        child.attach_faults(model)
        load = np.zeros((3, 3), dtype=np.int64)
        load[0, 1] = 80
        for ledger in (parent, child, child, parent):
            ledger.charge_load_matrix("s", load)
        steps = [e.step for e in model.events]
        assert steps == sorted(steps)
        assert parent.totals()["faults"] == child.totals()["faults"] == model.totals()


class TestLedgerFaults:
    def _ledger(self):
        return RoundLedger(ClusterTopology(k=3, bandwidth_bits=8))

    def _load(self, bits):
        load = np.zeros((3, 3), dtype=np.int64)
        load[0, 1] = bits
        return load

    def test_throttle_inflates_rounds(self):
        clean = self._ledger()
        assert clean.charge_load_matrix("s", self._load(64)) == 8
        faulted = self._ledger()
        faulted.attach_faults(FaultModel(FaultPlan(bandwidth_factor=0.5), run_seed=0))
        assert faulted.charge_load_matrix("s", self._load(64)) == 16
        assert faulted.steps[-1].fault_rounds == 8
        assert faulted.totals()["faults"]["throttle_rounds"] == 8

    def test_drop_retransmissions_recorded(self):
        ledger = self._ledger()
        ledger.attach_faults(FaultModel(FaultPlan(drop_prob=0.3), run_seed=1))
        total = 0
        for _ in range(10):
            total += ledger.charge_load_matrix("s", self._load(80))
        faults = ledger.totals()["faults"]
        assert faults["dropped_rounds"] > 0
        assert total == 100 + faults["fault_rounds"]

    def test_detach_restores_clean_accounting(self):
        ledger = self._ledger()
        ledger.attach_faults(FaultModel(FaultPlan(bandwidth_factor=0.5), run_seed=0))
        ledger.detach_faults()
        assert ledger.charge_load_matrix("s", self._load(64)) == 8
        assert "faults" not in ledger.totals()

    def test_charge_rounds_passes_through_unfaulted(self):
        ledger = self._ledger()
        ledger.attach_faults(FaultModel(FaultPlan(drop_prob=0.9), run_seed=0))
        assert ledger.charge_rounds("cited", 3) == 3


class TestEngineFaults:
    PLAN = FaultPlan(
        drop_prob=0.3,
        dup_prob=0.1,
        delay_prob=0.2,
        max_delay_rounds=3,
        stall_prob=0.1,
        max_stall_rounds=2,
        bandwidth_factor=0.5,
    )

    def test_leader_election_survives_heavy_faults(self):
        topo = ClusterTopology(k=5, bandwidth_bits=256)
        clean = [LeaderElectionProgram(5, seed=9) for _ in range(5)]
        SyncEngine(topo).run(clean)
        faulty = [LeaderElectionProgram(5, seed=9) for _ in range(5)]
        result = SyncEngine(topo, faults=self.PLAN, fault_seed=4).run(faulty)
        assert result.terminated
        assert {p.leader for p in faulty} == {clean[0].leader}
        assert result.dropped_messages > 0
        assert result.stalled_rounds > 0

    def test_fault_schedule_is_deterministic(self):
        topo = ClusterTopology(k=5, bandwidth_bits=256)

        def run_once():
            programs = [LeaderElectionProgram(5, seed=9) for _ in range(5)]
            return SyncEngine(topo, faults=self.PLAN, fault_seed=4).run(programs)

        a, b = run_once(), run_once()
        assert (a.rounds, a.delivered_messages, a.delivered_bits) == (
            b.rounds,
            b.delivered_messages,
            b.delivered_bits,
        )
        assert (a.dropped_messages, a.duplicated_messages, a.delayed_messages) == (
            b.dropped_messages,
            b.duplicated_messages,
            b.delayed_messages,
        )

    def test_benign_plan_is_clean_path(self):
        topo = ClusterTopology(k=2, bandwidth_bits=64)
        engine = SyncEngine(topo, faults=FaultPlan(), fault_seed=3)
        assert engine.faults is None  # normalized away

    def test_drops_preserve_per_link_fifo_order(self):
        # The link layer aborts the round's window at the first drop and
        # retransmits from the failed message on, so a receiver never sees
        # messages from one sender out of order under a drop-only plan.
        class Sender:
            def __init__(self):
                self.sent = False

            def on_round(self, machine, round_no, inbox):
                if machine == 0 and not self.sent:
                    self.sent = True
                    return [Envelope(0, 1, 8, seq) for seq in range(20)]
                return []

            def is_done(self, machine):
                return True

        class Receiver(Sender):
            def __init__(self):
                super().__init__()
                self.seen = []

            def on_round(self, machine, round_no, inbox):
                self.seen.extend(env.payload for env in inbox)
                return super().on_round(machine, round_no, inbox)

        topo = ClusterTopology(k=2, bandwidth_bits=16)
        recv = Receiver()
        plan = FaultPlan(drop_prob=0.4)
        result = SyncEngine(topo, faults=plan, fault_seed=2).run([Sender(), recv])
        assert result.terminated
        assert result.dropped_messages > 0
        assert recv.seen == sorted(recv.seen) == list(range(20))

    def test_duplicates_consume_bandwidth_and_repeat(self):
        class Blast:
            def __init__(self):
                self.sent = False
                self.got = []

            def on_round(self, machine, round_no, inbox):
                self.got.extend(env.payload for env in inbox)
                if machine == 0 and not self.sent:
                    self.sent = True
                    return [Envelope(0, 1, 8, i) for i in range(10)]
                return []

            def is_done(self, machine):
                return True

        topo = ClusterTopology(k=2, bandwidth_bits=8)  # one message per round
        clean_recv = Blast()
        clean = SyncEngine(topo).run([Blast(), clean_recv])
        dup_recv = Blast()
        dup = SyncEngine(topo, faults=FaultPlan(dup_prob=0.5), fault_seed=1).run(
            [Blast(), dup_recv]
        )
        assert dup.duplicated_messages > 0
        # Each duplicate is a real transmission on a saturated link: more
        # rounds and more delivered bits than the clean run.
        assert dup.rounds > clean.rounds
        assert dup.delivered_bits > clean.delivered_bits
        # Every original payload arrives; extras are repeats, not inventions.
        assert set(dup_recv.got) == set(range(10))
        assert len(dup_recv.got) == 10 + dup.duplicated_messages

    def test_faulted_run_costs_more_rounds(self):
        topo = ClusterTopology(k=5, bandwidth_bits=64)
        clean = SyncEngine(topo).run([LeaderElectionProgram(5, seed=2) for _ in range(5)])
        plan = FaultPlan(drop_prob=0.4, bandwidth_factor=0.25)
        faulted = SyncEngine(topo, faults=plan, fault_seed=1).run(
            [LeaderElectionProgram(5, seed=2) for _ in range(5)]
        )
        assert faulted.rounds > clean.rounds


class TestRoundLimitExceeded:
    def test_fault_stalled_run_reports_cleanly(self):
        # The regression the ISSUE names: a run kept busy by faults must
        # surface a dedicated exception carrying the accounting so far,
        # not a silent partial result.
        class Echo:
            started = False

            def on_round(self, machine, round_no, inbox):
                if machine == 0 and not self.started:
                    self.started = True
                    return [Envelope(0, 1, 8, "hello")]
                return [Envelope(machine, env.src, 8, "echo") for env in inbox]

            def is_done(self, machine):
                return False

        topo = ClusterTopology(k=2, bandwidth_bits=8)
        plan = FaultPlan(stall_prob=0.5, max_stall_rounds=2, drop_prob=0.3)
        with pytest.raises(RoundLimitExceeded) as excinfo:
            SyncEngine(topo, faults=plan, fault_seed=0).run([Echo(), Echo()], max_rounds=40)
        exc = excinfo.value
        assert exc.max_rounds == 40
        assert exc.result.rounds == 40
        assert not exc.result.terminated
        assert exc.result.stalled_rounds > 0 or exc.result.dropped_messages > 0
        assert "max_rounds=40" in str(exc)
        assert "stalled" in str(exc)
