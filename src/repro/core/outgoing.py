"""Outgoing-edge selection via combined linear sketches (Section 2.4).

One invocation implements the paper's per-phase selection step:

1. every machine builds the summed sketch of each component part it hosts
   (local computation over its own incidences — free);
2. parts ship their sketches to the component's random proxy machine
   (Lemma 1 traffic, charged through the load-matrix accounting);
3. each proxy sums its parts' sketches into the component sketch and
   samples one outgoing edge (Lemma 2);
4. the proxy resolves the *foreign* endpoint's current component label by
   querying that vertex's home machine (computable locally from the shared
   partition hash), one query/reply per component.

For the MST algorithm the same routine runs with a per-component weight
bound: incidences whose edge weight meets/exceeds the bound are zeroed out
before sketching (Section 3.1's edge-elimination), and the reply to the
label query additionally carries the sampled edge's weight.

Late-phase pruning
------------------
By default the step pre-filters *component-internal* incidence pairs and
sketches only the active frontier, grouping directly at component
granularity.  Both shortcuts are exact — the resulting component sketches
are byte-identical to the unpruned part-level pipeline (proof in
:func:`select_outgoing_edges`), so every downstream decision, ledger
charge, and committed baseline is unchanged; only the kernel work shrinks
with the frontier.  ``REPRO_SKETCH_PRUNE=0`` (or ``prune=False``) restores
the legacy execution path verbatim.
"""

from __future__ import annotations

import os

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.cluster.shared_random import SharedRandomness
from repro.core.labels import PartIndex
from repro.core.proxy import parts_to_proxies, proxy_of_labels
from repro.sketch.edgespace import decode_slot
from repro.sketch.l0 import SketchContext, SketchSpec
from repro.util.bits import bits_for_id

__all__ = ["OutgoingSelection", "select_outgoing_edges", "sketch_prune_default"]

_PRUNE_ENV = "REPRO_SKETCH_PRUNE"
_FALSY = ("0", "false", "off", "no")


def sketch_prune_default() -> bool:
    """Process-wide default for incidence pruning (``REPRO_SKETCH_PRUNE``).

    Pruning is exact (see :func:`select_outgoing_edges`) and on by
    default; the environment kill-switch exists so the legacy unpruned
    pipeline stays runnable for speedup measurements and forensics.
    """
    return os.environ.get(_PRUNE_ENV, "1").strip().lower() not in _FALSY


@dataclass(frozen=True)
class OutgoingSelection:
    """Per-component outcome of one selection step (arrays indexed by component).

    Attributes
    ----------
    parts:
        The :class:`PartIndex` the step ran on.
    comp_proxy:
        ``int64[C]``; the proxy machine of each component this iteration.
    sketch_nonzero:
        ``bool[C]``; True where the (possibly weight-restricted) component
        sketch is nonzero — i.e. an outgoing edge exists w.h.p.
    found:
        ``bool[C]``; True where one-sparse recovery produced a verified edge.
    slot:
        ``int64[C]``; sampled canonical edge slot (-1 where not found).
    internal_vertex / foreign_vertex:
        ``int64[C]``; the sampled edge's endpoint inside / outside the
        component (-1 where not found).
    neighbor_label:
        ``int64[C]``; current label of the foreign endpoint's component.
    edge_weight:
        ``float64[C]``; sampled edge weight (NaN unless requested & found).
    """

    parts: PartIndex
    comp_proxy: np.ndarray
    sketch_nonzero: np.ndarray
    found: np.ndarray
    slot: np.ndarray
    internal_vertex: np.ndarray
    foreign_vertex: np.ndarray
    neighbor_label: np.ndarray
    edge_weight: np.ndarray


def select_outgoing_edges(
    cluster: KMachineCluster,
    shared: SharedRandomness,
    labels: np.ndarray,
    phase: int,
    *,
    iteration: int = 0,
    sketch_seed: int | None = None,
    parts: PartIndex | None = None,
    inc_part: np.ndarray | None = None,
    repetitions: int = 6,
    hash_family: str = "prf",
    weight_bound_per_comp: np.ndarray | None = None,
    want_weights: bool = False,
    prune: bool | None = None,
    inc_cross: np.ndarray | None = None,
) -> OutgoingSelection:
    """Run one sketch-sample-resolve step; charges the cluster ledger.

    Parameters
    ----------
    cluster, shared, labels, phase:
        Run state.  ``labels`` is the current component label per vertex.
    iteration:
        Sub-iteration rho (fresh proxy hash per Lemma 5's requirement).
    sketch_seed:
        Seed of the sketch matrix; defaults to the phase matrix
        ``shared.sketch_seed(phase)``.  MST elimination passes a fresh
        seed per elimination round.
    parts:
        Pre-built :class:`PartIndex` (labels unchanged since built);
        recomputed if omitted.
    inc_part:
        Pre-computed ``parts.part_of_vertex[cluster.inc_owner]`` (must
        belong to ``parts``); recomputed if omitted.  Callers that run
        several selections against one part structure — MST elimination
        iterations, connectivity retry phases — pass it to skip the
        per-call gather.
    repetitions / hash_family:
        Sketch parameters (see :class:`~repro.sketch.l0.SketchSpec`).
    weight_bound_per_comp:
        ``float64[C]`` aligned with ``parts.comp_labels``: incidences with
        ``weight >= bound`` are excluded from the sketch (MST elimination).
        ``+inf`` (or None) keeps everything.
    want_weights:
        If True, label-query replies carry the edge weight (64 extra bits).
    prune:
        Pre-filter component-internal incidences and sketch the surviving
        frontier directly at component granularity.  ``None`` (default)
        reads :func:`sketch_prune_default`; ``False`` runs the legacy
        part-level pipeline verbatim.  **Exactness proof** — the pruned
        component sketches are byte-identical to the unpruned ones:

        1. *Internal pairs cancel.*  An edge ``{u, v}`` with
           ``labels[u] == labels[v]`` appears as two incidences carrying
           the same canonical slot with opposite signs (the min-endpoint
           owner gets +1).  Equal slots receive the same per-repetition
           sampling depth and the same fingerprint power ``r^slot``, so at
           component granularity — where both incidences land in the same
           group — every accumulator sees ``+x`` and ``-x`` of the *same
           exact integer*: counts and id-sums are exact signed int64, and
           the fingerprint accumulators are exact signed sums of 30-bit
           halves reduced to the canonical representative mod
           ``p = 2^61 - 1``.  Dropping the pair changes no accumulator
           value.  Under an MST weight bound both halves share the owner
           component, hence the same bound and the same edge weight, so
           they are always kept or dropped *together* — surviving internal
           incidences still cancel pairwise.
        2. *Part grouping commutes with aggregation.*  Sketch linearity:
           grouping incidences by part and then summing parts into
           components (``aggregate``) produces exact int64 counts/sums and
           canonical mod-p fingerprints of the same residues as grouping
           the incidences by component directly, so the two pipelines emit
           identical bytes and the part-level pass can be skipped.

        Every downstream consumer (nonzero test, sample, label queries)
        reads only the component bundle, and every ledger charge depends
        only on the part/proxy structure and ``spec.message_bits`` — never
        on sketch *contents* — so selections, rounds, and RunReport
        envelopes are byte-identical either way.  Pinned by
        ``tests/core/test_pruning.py``.
    inc_cross:
        Pre-computed ``labels[cluster.inc_owner] !=
        labels[cluster.inc_other]`` (must belong to ``labels``); recomputed
        if omitted.  Amortizable across iterations exactly like
        ``inc_part``.  Ignored when pruning is off.
    """
    n, k = cluster.n, cluster.k
    if parts is None:
        parts = PartIndex.build(labels, cluster.partition)
    if prune is None:
        prune = sketch_prune_default()
    seed = shared.sketch_seed(phase) if sketch_seed is None else sketch_seed
    spec = SketchSpec.for_graph(n, seed, repetitions=repetitions, hash_family=hash_family)
    shared.charge_sketch_seed_distribution(cluster.ledger, phase)

    # 1. Local sketch construction per part (free local computation).
    if inc_part is None:
        inc_part = parts.part_of_vertex[cluster.inc_owner]
    bound = None
    if weight_bound_per_comp is not None:
        bound = np.asarray(weight_bound_per_comp, dtype=np.float64)
        if bound.shape != (parts.n_components,):
            raise ValueError("weight_bound_per_comp must align with components")
    if prune:
        if inc_cross is None:
            inc_cross = labels[cluster.inc_owner] != labels[cluster.inc_other]
        inc_comp = parts.comp_of_part[inc_part]
        keep = inc_cross
        if bound is not None:
            keep = keep & (cluster.inc_weight < bound[inc_comp])
        ctx = SketchContext(spec, cluster.inc_slot[keep], cluster.inc_sign[keep])
        comp_group = inc_comp[keep]
    else:
        ctx = SketchContext(spec, cluster.inc_slot, cluster.inc_sign)
        mask = None
        if bound is not None:
            inc_comp = parts.comp_of_part[inc_part]
            mask = cluster.inc_weight < bound[inc_comp]
        part_bundle = ctx.group_sums(inc_part, parts.n_parts, mask=mask)

    # 2. Ship part sketches to component proxies (Lemma 1 pattern).
    stream = shared.proxy_stream(phase, iteration)
    comp_proxy = proxy_of_labels(stream, parts.comp_labels, k)
    part_proxy = comp_proxy[parts.comp_of_part]
    parts_to_proxies(
        cluster,
        f"sketch-to-proxy:phase-{phase}-it-{iteration}",
        parts.part_machine,
        part_proxy,
        spec.message_bits,
    )

    # 3. Proxy-side combination and sampling (Lemma 2).  With pruning the
    # frontier incidences were grouped at component granularity directly
    # (byte-identical to part-then-aggregate; see the docstring proof).
    if prune:
        comp_bundle = ctx.group_sums(comp_group, parts.n_components)
    else:
        comp_bundle = part_bundle.aggregate(parts.comp_of_part, parts.n_components)
    nonzero = comp_bundle.nonzero_mask()
    sample = comp_bundle.sample()
    found = sample.found

    c = parts.n_components
    internal = np.full(c, -1, dtype=np.int64)
    foreign = np.full(c, -1, dtype=np.int64)
    neighbor_label = np.full(c, -1, dtype=np.int64)
    weight = np.full(c, np.nan, dtype=np.float64)
    if found.any():
        idx = np.nonzero(found)[0]
        lo, hi = decode_slot(n, sample.slots[idx])
        sign = sample.signs[idx]
        internal[idx] = np.where(sign > 0, lo, hi)
        foreign[idx] = np.where(sign > 0, hi, lo)

        # 4. Resolve the foreign endpoint's label (and weight, for MST):
        # proxy -> home(foreign) query, then the reply re-runs the schedule.
        foreign_home = cluster.partition.home[foreign[idx]]
        query_bits = bits_for_id(n * n) + bits_for_id(n)
        reply_bits = bits_for_id(n) + (64 if want_weights else 0)
        q = CommStep(cluster.ledger, f"label-query:phase-{phase}-it-{iteration}")
        q.add(comp_proxy[idx], foreign_home, query_bits)
        q.deliver()
        r = CommStep(cluster.ledger, f"label-reply:phase-{phase}-it-{iteration}")
        r.add(foreign_home, comp_proxy[idx], reply_bits)
        r.deliver()
        neighbor_label[idx] = labels[foreign[idx]]
        if want_weights:
            eu, ev = np.minimum(internal[idx], foreign[idx]), np.maximum(
                internal[idx], foreign[idx]
            )
            weight[idx] = _edge_weights(cluster, eu, ev)

    return OutgoingSelection(
        parts=parts,
        comp_proxy=comp_proxy,
        sketch_nonzero=nonzero,
        found=found,
        slot=sample.slots,
        internal_vertex=internal,
        foreign_vertex=foreign,
        neighbor_label=neighbor_label,
        edge_weight=weight,
    )


def _edge_weights(cluster: KMachineCluster, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Weights of edges given by canonical endpoint arrays (vectorized lookup).

    The home machine of either endpoint knows the weight locally; this is
    the content of the label-query reply, so no extra communication is
    charged here.
    """
    g = cluster.graph
    key = g.edges_u * np.int64(g.n) + g.edges_v
    q = us * np.int64(g.n) + vs
    pos = np.searchsorted(key, q)
    pos = np.clip(pos, 0, key.size - 1)
    if not np.all(key[pos] == q):
        raise KeyError("sampled slot does not correspond to a graph edge")
    return g.weights[pos]
