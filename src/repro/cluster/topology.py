"""Cluster topology: k machines, complete network, per-link bandwidth.

The k-machine model (Section 1.1): k >= 2 machines pairwise interconnected
by bidirectional point-to-point links, each link carrying O(polylog n) bits
per round.  Local computation is free; the only cost is communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bits import polylog_bandwidth
from repro.util.validation import check_positive

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """The static parameters of a k-machine cluster.

    Attributes
    ----------
    k:
        Number of machines (>= 2).
    bandwidth_bits:
        Per-link, per-round, per-direction capacity in bits.  Defaults to
        the polylog model ``64 * ceil(log2 n)^2`` via :meth:`for_problem`.
    """

    k: int
    bandwidth_bits: int

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k-machine model needs k >= 2, got {self.k}")
        check_positive("bandwidth_bits", self.bandwidth_bits)

    @staticmethod
    def for_problem(k: int, n: int, bandwidth_multiplier: int = 64) -> "ClusterTopology":
        """Topology with the standard O(polylog n) bandwidth for n-vertex inputs."""
        return ClusterTopology(k=k, bandwidth_bits=polylog_bandwidth(n, bandwidth_multiplier))

    @property
    def n_links(self) -> int:
        """Number of bidirectional links in the complete network: k(k-1)/2."""
        return self.k * (self.k - 1) // 2

    @property
    def total_bits_per_round(self) -> int:
        """Aggregate network capacity per round (both directions of every link).

        The lower-bound argument of the paper (Section 1): the network
        moves at most Theta~(k^2) bits per round, hence Omega~(n/k^2)
        rounds for problems needing Omega~(n) bits of communication.
        """
        return 2 * self.n_links * self.bandwidth_bits
