"""Tests for the Theorem-5 SCS reduction and 2-party simulation."""

from __future__ import annotations

import pytest

from repro.lowerbounds.disjointness import make_instance
from repro.lowerbounds.scs_instance import build_scs_instance
from repro.lowerbounds.simulation import simulate_scs_protocol


class TestInstanceConstruction:
    def test_machine_split(self):
        inst = make_instance(20, seed=1)
        scs = build_scs_instance(inst, k=8, seed=1)
        assert scs.alice_machines.tolist() == [0, 1, 2, 3]
        assert scs.bob_machines.tolist() == [4, 5, 6, 7]
        assert scs.partition.home.min() >= 0
        assert scs.partition.home.max() < 8

    def test_s_on_bob_t_on_alice(self):
        inst = make_instance(20, seed=2)
        scs = build_scs_instance(inst, k=8, seed=2)
        assert scs.partition.home[0] in scs.bob_machines  # s
        assert scs.partition.home[1] in scs.alice_machines  # t

    def test_expected_answer_tracks_disjointness(self):
        for seed in range(6):
            inst = make_instance(15, seed=seed, intersecting=bool(seed % 2))
            scs = build_scs_instance(inst, k=4, seed=seed)
            assert scs.expected_answer == (not bool(seed % 2))

    def test_rejects_odd_or_tiny_k(self):
        inst = make_instance(10, seed=3)
        with pytest.raises(ValueError):
            build_scs_instance(inst, k=5, seed=3)
        with pytest.raises(ValueError):
            build_scs_instance(inst, k=2, seed=3)


class TestSimulation:
    @pytest.mark.parametrize("intersecting", [False, True])
    def test_protocol_correct(self, intersecting):
        out = simulate_scs_protocol(b=60, k=8, seed=4, intersecting=intersecting)
        assert out.correct
        assert out.answer == (not intersecting)

    def test_simulation_inequality(self):
        # cut_bits <= rounds * (k^2/4) * 2B: the inequality that turns a
        # round lower bound into a communication lower bound.
        out = simulate_scs_protocol(b=80, k=8, seed=5, intersecting=False)
        assert 0 < out.cut_bits <= out.cut_capacity_bits

    def test_cut_bits_grow_with_b(self):
        # Lemma 8 says Omega(b) bits must cross the cut: measured traffic
        # must grow as the instance grows.
        bits = []
        for b in (40, 160, 640):
            out = simulate_scs_protocol(b=b, k=8, seed=6, intersecting=False)
            bits.append(out.cut_bits)
        assert bits[0] < bits[1] < bits[2]
        assert bits[2] > 4 * bits[0]

    def test_explicit_instance_passthrough(self):
        inst = make_instance(30, seed=7, intersecting=True)
        out = simulate_scs_protocol(b=30, k=4, seed=7, instance=inst)
        assert out.b == 30
        assert not out.answer
