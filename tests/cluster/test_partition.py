"""Tests for RVP/REP partitioning: balance, determinism, shared-hash property."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.partition import (
    VertexPartition,
    random_edge_partition,
    random_vertex_partition,
)


class TestRVP:
    def test_covers_all_machines(self):
        p = random_vertex_partition(10_000, 8, seed=1)
        assert np.unique(p.home).size == 8

    def test_balance_whp(self):
        # RVP gives Theta(n/k) vertices per machine w.h.p. (Section 1.1).
        p = random_vertex_partition(80_000, 16, seed=2)
        counts = p.counts()
        mean = 80_000 / 16
        assert counts.min() > 0.9 * mean
        assert counts.max() < 1.1 * mean

    def test_deterministic_shared_hash(self):
        # Two machines computing the partition independently agree — the
        # "if a machine knows a vertex ID it knows its home" property.
        a = random_vertex_partition(1000, 8, seed=3)
        b = random_vertex_partition(1000, 8, seed=3)
        assert np.array_equal(a.home, b.home)

    def test_home_of_vectorized(self):
        p = random_vertex_partition(100, 4, seed=4)
        vs = np.array([0, 50, 99])
        assert np.array_equal(p.home_of(vs), p.home[vs])

    def test_machine_vertices_partition(self):
        p = random_vertex_partition(500, 5, seed=5)
        all_vs = np.concatenate([p.machine_vertices(m) for m in range(5)])
        assert np.array_equal(np.sort(all_vs), np.arange(500))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            random_vertex_partition(10, 1, seed=0)

    def test_seed_changes_partition(self):
        a = random_vertex_partition(1000, 8, seed=1)
        b = random_vertex_partition(1000, 8, seed=2)
        assert not np.array_equal(a.home, b.home)


class TestREP:
    def test_range_and_balance(self):
        em = random_edge_partition(40_000, 8, seed=1)
        assert em.min() >= 0 and em.max() < 8
        counts = np.bincount(em, minlength=8)
        assert counts.min() > 40_000 / 8 * 0.9

    def test_deterministic(self):
        assert np.array_equal(
            random_edge_partition(100, 4, seed=7), random_edge_partition(100, 4, seed=7)
        )


class TestVertexPartitionManual:
    def test_adversarial_partition_usable(self):
        # Tests can construct worst-case partitions directly.
        home = np.zeros(10, dtype=np.int64)
        home[5:] = 1
        p = VertexPartition(k=2, home=home, seed=0)
        assert p.counts().tolist() == [5, 5]
        assert p.n == 10
