"""repro.service — the always-on graph service (server + load generator).

The runtime API (:mod:`repro.runtime`) made every run a one-shot: build a
graph, build a cluster, run, exit.  This package keeps the expensive state
*warm*: a stdlib-only :mod:`asyncio` server owns a pool of
:class:`~repro.runtime.session.Session` workers whose bounded LRU cluster
caches persist across requests, so concurrent ``run`` / ``sweep`` traffic
sharing a *(graph family, n, seed, k, scheme, epoch)* cluster key
coalesces onto one cached cluster build instead of re-partitioning the
graph per request.

Three layers, all stdlib + the already-present numpy stack:

* :mod:`repro.service.protocol` — a thin length-prefixed JSON wire
  protocol (4-byte big-endian length + UTF-8 JSON per frame) and the
  typed :class:`~repro.service.protocol.RunRequest` unit of traffic.
* :mod:`repro.service.server` — :class:`~repro.service.server.GraphService`:
  key-affinity dispatch onto single-threaded session workers (which is
  what makes coalescing accounting deterministic), per-op handlers
  (``run`` / ``sweep`` / ``scenarios`` / ``bench_info`` / ``stats`` /
  ``ping`` / ``shutdown``), and byte-deterministic
  ``include_timing=False`` report envelopes on the wire.
* :mod:`repro.service.loadgen` — seeded deterministic request mixes drawn
  from the scenario registry, open/closed-loop arrival, latency
  percentiles, and coalescing hit-rate accounting
  (:class:`~repro.service.loadgen.LoadgenResult`).

Determinism policy (DESIGN.md §10): everything a perf gate sees — request
counts, coalesce hits, model rounds/bits, the SHA-256 over every served
envelope — is a pure function of the seeded mix; wall-clock throughput
and latency are advisory only.  ``repro serve`` / ``repro loadgen`` are
the CLI faces; ``BENCH_service_*`` the measured traffic axis.
"""

from repro.service.loadgen import (
    LoadgenOptions,
    LoadgenResult,
    MixSpec,
    build_mix,
    run_loadgen,
    run_with_local_service,
)
from repro.service.protocol import ProtocolError, RunRequest, read_frame, write_frame
from repro.service.server import GraphService

__all__ = [
    "GraphService",
    "LoadgenOptions",
    "LoadgenResult",
    "MixSpec",
    "ProtocolError",
    "RunRequest",
    "build_mix",
    "read_frame",
    "run_loadgen",
    "run_with_local_service",
    "write_frame",
]
