"""Flooding connectivity — the Theta(n/k + D) baseline (Section 2 warm-up).

Every vertex repeatedly floods the smallest component label it has seen;
after D_c rounds (the component's diameter) all labels agree.  This is the
congested-clique algorithm implemented in Giraph variants [43]; converted
to the k-machine model (each CC round's vertex messages become machine
traffic) it costs Theta(n/k + D) rounds by the Conversion Theorem — the
bound the paper's algorithm beats on high-diameter graphs.

The replay charges every CC round as one bulk step on the cluster ledger,
exactly like :func:`repro.cluster.conversion.replay_trace` but streamed
(no trace materialization) for memory efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.util.bits import bits_for_id

__all__ = ["FloodingResult", "flooding_connectivity"]


@dataclass(frozen=True)
class FloodingResult:
    """Output of the flooding baseline."""

    labels: np.ndarray
    n_components: int
    rounds: int
    cc_rounds: int
    total_bits: int


def flooding_connectivity(cluster: KMachineCluster, max_cc_rounds: int | None = None) -> FloodingResult:
    """Run label flooding; charge the cluster ledger; return the result.

    Per CC round, every vertex whose label changed in the previous round
    sends the new label to all neighbors — the standard "think like a
    vertex" implementation, with messages across machine boundaries charged
    at ``ceil(log2 n)`` bits each.
    """
    n = cluster.n
    labels = np.arange(n, dtype=np.int64)
    changed = np.ones(n, dtype=bool)
    label_bits = bits_for_id(max(n, 2))
    inc_owner = cluster.inc_owner
    inc_other = cluster.inc_other
    src_m = cluster.inc_machine
    dst_m = cluster.partition.home[inc_other]
    budget = max_cc_rounds if max_cc_rounds is not None else n + 1
    cc_rounds = 0
    bits_before = cluster.ledger.total_bits
    for r in range(budget):
        sel = changed[inc_owner]
        if not sel.any():
            break
        cc_rounds = r + 1
        step = CommStep(cluster.ledger, f"flooding:cc-round-{r}")
        step.add(src_m[sel], dst_m[sel], label_bits)
        rounds = step.deliver()
        if rounds == 0:
            # All traffic was machine-local this round; the CC round still
            # consumes one synchronous k-machine round.
            cluster.ledger.charge_rounds(f"flooding:cc-round-{r}:sync", 1)
        # Local min-label update (free computation).
        proposals = labels[inc_owner[sel]]
        new_labels = labels.copy()
        np.minimum.at(new_labels, inc_other[sel], proposals)
        changed = new_labels < labels
        labels = new_labels
    return FloodingResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        rounds=cluster.ledger.total_rounds,
        cc_rounds=cc_rounds,
        total_bits=cluster.ledger.total_bits - bits_before,
    )
