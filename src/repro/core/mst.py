"""Distributed MST via sketch-based Boruvka with edge elimination (Theorem 2).

Section 3.1: the connectivity procedure is modified so that the edge each
component selects is its *minimum-weight outgoing edge* (MWOE) w.h.p.  Per
phase, each component C runs an elimination loop:

    e_0 <- random outgoing edge (unrestricted sketch)
    repeat:
        proxy broadcasts w(e_t) to C's parts;
        parts re-sketch with all slots of weight >= w(e_t) zeroed out;
        proxy samples e_{t+1} among strictly lighter outgoing edges
    until the restricted sketch is the zero vector
      -> e_t is exactly the MWOE.

The paper runs a fixed t = Theta(log n) iterations and gets the MWOE
w.h.p.; we iterate to the verified zero-sketch fixpoint by default (each
iteration halves the candidate's weight-rank in expectation, so the loop
length is Theta(log n) w.h.p. — same bound, but the outcome is certified).
A fixed-budget mode (``strict_elimination_budget``) reproduces the paper's
variant for the ablation ``bench_ablation_elimination``.

Output criteria (both provided, per Theorem 2):

* **relaxed** — each MST edge is known to the proxy machine that selected
  it: no extra communication, O~(n/k^2) rounds total.
* **strict** — each MST edge is additionally announced to the home
  machines of both endpoints: on skewed graphs (e.g. stars) some machine
  must receive Omega(n) bits, costing Theta~(n/k) rounds — the Theorem
  2(b) separation measured by ``bench_mst``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import KMachineCluster
from repro.cluster.comm import CommStep
from repro.cluster.shared_random import SharedRandomness
from repro.core.drr import build_drr_forest, charge_forest_build, merge_forest
from repro.core.labels import PartIndex, initial_labels
from repro.core.outgoing import (
    OutgoingSelection,
    select_outgoing_edges,
    sketch_prune_default,
)
from repro.core.proxy import proxies_to_parts
from repro.runtime.config import SketchConfig, resolve_sketch
from repro.util.bits import bits_for_id
from repro.util.rng import derive_seed

__all__ = ["MSTResult", "MSTPhaseStats", "minimum_spanning_tree_distributed"]


@dataclass(frozen=True)
class MSTPhaseStats:
    """Diagnostics of one MST phase."""

    phase: int
    components_start: int
    components_end: int
    elimination_iterations: int
    mwoe_certified: int
    mwoe_uncertified: int
    rounds: int


@dataclass
class MSTResult:
    """Output of a distributed MST run.

    Attributes
    ----------
    edges_u / edges_v / edge_weights:
        The spanning-forest edges (MST edges w.h.p.; exact when every
        phase certified its MWOEs — see ``certified``).
    owner_machine:
        The proxy machine that output each edge (relaxed criterion).
    total_weight:
        Sum of the selected edge weights.
    rounds / phases / converged:
        Run metrics (rounds includes strict-output announcements if any).
    certified:
        True if every selected edge was certified as an exact MWOE by the
        zero-sketch test (guaranteed MST when edge weights are unique).
    labels:
        Final component labels (for forests on disconnected inputs).
    """

    edges_u: np.ndarray
    edges_v: np.ndarray
    edge_weights: np.ndarray
    owner_machine: np.ndarray
    total_weight: float
    rounds: int
    phases: int
    converged: bool
    certified: bool
    labels: np.ndarray
    phase_stats: list[MSTPhaseStats] = field(default_factory=list)

    @property
    def n_edges(self) -> int:
        """Number of selected spanning-forest edges."""
        return int(self.edges_u.size)


def minimum_spanning_tree_distributed(
    cluster: KMachineCluster,
    seed: int = 0,
    *,
    repetitions: int | None = None,
    hash_family: str | None = None,
    sketch: SketchConfig | None = None,
    max_phases: int | None = None,
    strict_elimination_budget: int | None = None,
    output: str = "relaxed",
    charge_shared_randomness: bool = True,
) -> MSTResult:
    """Run the Theorem-2 MST algorithm on ``cluster``; charges its ledger.

    This is the implementation behind the ``"mst"`` registry entry (see
    :mod:`repro.runtime`); prefer ``Session.run("mst", ...)`` for new code.
    Sketch parameters follow the same explicit-kwargs-over-``sketch``
    precedence as :func:`~repro.core.connectivity.connected_components_distributed`.

    Parameters
    ----------
    output:
        ``'relaxed'`` (Theorem 2a) or ``'strict'`` (Theorem 2b, edges
        announced to both endpoint home machines).
    strict_elimination_budget:
        If set, run exactly this many elimination iterations per phase (the
        paper's fixed t = Theta(log n)); otherwise iterate to the certified
        zero-sketch fixpoint (with a 4 log2 n + 8 safety cap).
    """
    if output not in ("relaxed", "strict"):
        raise ValueError(f"output must be 'relaxed' or 'strict', got {output!r}")
    repetitions, hash_family = resolve_sketch(sketch, repetitions, hash_family)
    n, k = cluster.n, cluster.k
    shared = SharedRandomness(master_seed=seed, n=n, k=k)
    labels = initial_labels(n)
    budget = max_phases if max_phases is not None else max(1, math.ceil(12 * math.log2(max(n, 2))))
    elim_cap = (
        strict_elimination_budget
        if strict_elimination_budget is not None
        else 4 * max(1, math.ceil(math.log2(max(n, 2)))) + 8
    )
    stats: list[MSTPhaseStats] = []
    out_u: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    out_w: list[np.ndarray] = []
    out_m: list[np.ndarray] = []
    converged = False
    certified = True
    phases = 0
    id_bits = bits_for_id(max(n, 2))
    # As in connectivity: retry phases (no merge) keep the labels, so the
    # part structure, incidence -> part gather, and cross-component mask
    # carry over unchanged.
    parts = None
    inc_part = None
    inc_cross = None
    prune = sketch_prune_default()
    for phase in range(1, budget + 1):
        phases = phase
        rounds_before = cluster.ledger.total_rounds
        if charge_shared_randomness:
            shared.charge_phase_distribution(cluster.ledger, phase)
        if parts is None:
            parts = PartIndex.build(labels, cluster.partition)
            inc_part = parts.part_of_vertex[cluster.inc_owner]
            if prune:
                inc_cross = labels[cluster.inc_owner] != labels[cluster.inc_other]
        c = parts.n_components
        bound = np.full(c, np.inf, dtype=np.float64)
        best_slot = np.full(c, -1, dtype=np.int64)
        best_internal = np.full(c, -1, dtype=np.int64)
        best_foreign = np.full(c, -1, dtype=np.int64)
        best_label = np.full(c, -1, dtype=np.int64)
        best_weight = np.full(c, np.nan, dtype=np.float64)
        have_cand = np.zeros(c, dtype=bool)
        cert = np.zeros(c, dtype=bool)
        active = np.ones(c, dtype=bool)
        any_outgoing = False  # did any component's unrestricted sketch exist?
        last_proxy = None
        iterations = 0
        for t in range(elim_cap):
            iterations = t + 1
            selection = select_outgoing_edges(
                cluster,
                shared,
                labels,
                phase,
                iteration=t,
                sketch_seed=derive_seed(shared.sketch_seed(phase), t),
                parts=parts,
                inc_part=inc_part,
                repetitions=repetitions,
                hash_family=hash_family,
                weight_bound_per_comp=np.where(active, bound, 0.0),
                want_weights=True,
                prune=prune,
                inc_cross=inc_cross,
            )
            last_proxy = selection.comp_proxy
            if t == 0:
                # The unrestricted (bound = inf) sketches tell whether any
                # outgoing edge exists at all — the true termination signal
                # (sampling failures are retried, not treated as absence).
                any_outgoing = bool(selection.sketch_nonzero.any())
            # Components whose restricted sketch vanished: current candidate
            # is certified as the exact MWOE (or no outgoing edge exists).
            done_now = active & ~selection.sketch_nonzero
            cert[done_now & have_cand] = True
            active &= ~done_now
            # Components that sampled a strictly lighter edge: adopt it.
            upd = active & selection.found
            if upd.any():
                idx = np.nonzero(upd)[0]
                best_slot[idx] = selection.slot[idx]
                best_internal[idx] = selection.internal_vertex[idx]
                best_foreign[idx] = selection.foreign_vertex[idx]
                best_label[idx] = selection.neighbor_label[idx]
                best_weight[idx] = selection.edge_weight[idx]
                bound[idx] = selection.edge_weight[idx]
                have_cand[idx] = True
                # The proxy broadcasts the new threshold w(e_t) to the
                # component's parts (Section 3.1).
                part_upd = np.nonzero(upd[parts.comp_of_part])[0]
                proxies_to_parts(
                    cluster,
                    f"mwoe-threshold:phase-{phase}-it-{t}",
                    parts.part_machine[part_upd],
                    selection.comp_proxy[parts.comp_of_part[part_upd]],
                    64 + id_bits,
                )
            if not active.any():
                break
        if active.any():
            # Fixed-budget mode (or cap hit): surviving candidates are the
            # paper's w.h.p.-MWOE edges, but uncertified.
            certified = certified and not (active & have_cand).any()
        if not have_cand.any():
            stats.append(
                MSTPhaseStats(
                    phase=phase,
                    components_start=c,
                    components_end=c,
                    elimination_iterations=iterations,
                    mwoe_certified=int(cert.sum()),
                    mwoe_uncertified=0,
                    rounds=cluster.ledger.total_rounds - rounds_before,
                )
            )
            if not any_outgoing:
                converged = True  # zero sketches everywhere: forest is final
                break
            continue  # outgoing edges exist but sampling failed; retry phase
        merged_selection = OutgoingSelection(
            parts=parts,
            comp_proxy=last_proxy,
            sketch_nonzero=have_cand.copy(),
            found=have_cand.copy(),
            slot=best_slot,
            internal_vertex=best_internal,
            foreign_vertex=best_foreign,
            neighbor_label=best_label,
            edge_weight=best_weight,
        )
        forest = build_drr_forest(parts, merged_selection, shared.rank_stream(phase))
        charge_forest_build(cluster, merged_selection, forest, phase)
        kids = np.nonzero(forest.parent >= 0)[0]
        if kids.size:
            ku = best_internal[kids]
            kv = best_foreign[kids]
            out_u.append(ku)
            out_v.append(kv)
            out_w.append(best_weight[kids])
            out_m.append(last_proxy[kids])
            if output == "strict":
                # Theorem 2(b): announce each selected edge to the home
                # machines of both endpoints.
                bits = 2 * id_bits + 64
                step = CommStep(cluster.ledger, f"strict-output:phase-{phase}")
                step.add(last_proxy[kids], cluster.partition.home[ku], bits)
                step.add(last_proxy[kids], cluster.partition.home[kv], bits)
                step.deliver()
        merge = merge_forest(cluster, shared, labels, forest, phase, first_iteration=elim_cap + 1)
        labels = merge.labels
        parts = None  # labels changed: rebuild the part structure next phase
        inc_part = None
        inc_cross = None
        stats.append(
            MSTPhaseStats(
                phase=phase,
                components_start=c,
                components_end=int(np.unique(labels).size),
                elimination_iterations=iterations,
                mwoe_certified=int(cert.sum()),
                mwoe_uncertified=int((have_cand & ~cert).sum()),
                rounds=cluster.ledger.total_rounds - rounds_before,
            )
        )
    eu = np.concatenate(out_u) if out_u else np.empty(0, dtype=np.int64)
    ev = np.concatenate(out_v) if out_v else np.empty(0, dtype=np.int64)
    ew = np.concatenate(out_w) if out_w else np.empty(0, dtype=np.float64)
    em = np.concatenate(out_m) if out_m else np.empty(0, dtype=np.int64)
    return MSTResult(
        edges_u=eu,
        edges_v=ev,
        edge_weights=ew,
        owner_machine=em,
        total_weight=float(ew.sum()),
        rounds=cluster.ledger.total_rounds,
        phases=phases,
        converged=converged,
        certified=certified,
        labels=labels,
        phase_stats=stats,
    )
