"""Tests for the l0 sketch: linearity, recovery, zero detection (Lemma 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.edgespace import decode_slot, incident_slots_and_signs
from repro.sketch.l0 import SketchContext, SketchSpec


def sketch_of_vertex_set(n, edges, vertex_set, spec):
    """Sketch of sum of incidence vectors over ``vertex_set`` (test helper)."""
    owners, others = [], []
    for u, v in edges:
        owners += [u, v]
        others += [v, u]
    owners = np.array(owners, dtype=np.int64)
    others = np.array(others, dtype=np.int64)
    slots, signs = incident_slots_and_signs(n, owners, others)
    ctx = SketchContext(spec, slots, signs)
    group = np.where(np.isin(owners, list(vertex_set)), 0, 1)
    return ctx.group_sums(group, 2)


class TestSpec:
    def test_for_graph_defaults(self):
        spec = SketchSpec.for_graph(100, seed=1)
        assert spec.levels >= 14
        assert spec.message_bits > 0

    def test_rejects_huge_n(self):
        with pytest.raises(ValueError, match="2\\^20"):
            SketchSpec.for_graph((1 << 20) + 1, seed=0)

    def test_rejects_bad_reps(self):
        with pytest.raises(ValueError):
            SketchSpec.for_graph(10, seed=0, repetitions=0)

    def test_fingerprint_base_in_field(self):
        spec = SketchSpec.for_graph(50, seed=3)
        for rep in range(spec.repetitions):
            r = spec.fingerprint_base(rep)
            assert 2 <= r < (1 << 61) - 1


class TestZeroDetection:
    def test_zero_vector_is_zero(self):
        # A complete graph summed over ALL vertices cancels every edge.
        n = 12
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        spec = SketchSpec.for_graph(n, seed=4)
        b = sketch_of_vertex_set(n, edges, set(range(n)), spec)
        agg = b.aggregate(np.array([0, 0]), 1)
        assert not agg.nonzero_mask()[0]

    def test_nonzero_vector_detected(self):
        n = 10
        edges = [(0, 5)]
        spec = SketchSpec.for_graph(n, seed=5)
        b = sketch_of_vertex_set(n, edges, {0}, spec)
        assert b.nonzero_mask()[0]

    def test_empty_incidences(self):
        spec = SketchSpec.for_graph(10, seed=6)
        ctx = SketchContext(spec, np.empty(0, np.uint64), np.empty(0, np.int64))
        b = ctx.group_sums(np.empty(0, np.int64), 3)
        assert not b.nonzero_mask().any()
        assert not b.sample().found.any()


class TestRecovery:
    def test_single_edge_recovered_exactly(self):
        n = 16
        spec = SketchSpec.for_graph(n, seed=7)
        b = sketch_of_vertex_set(n, [(3, 11)], {3}, spec)
        res = b.sample()
        assert res.found[0]
        lo, hi = decode_slot(n, np.array([res.slots[0]]))
        assert (int(lo[0]), int(hi[0])) == (3, 11)
        assert res.signs[0] == 1  # 3 (inside) is the smaller endpoint

    def test_sign_indicates_internal_endpoint(self):
        n = 16
        spec = SketchSpec.for_graph(n, seed=8)
        b = sketch_of_vertex_set(n, [(3, 11)], {11}, spec)
        res = b.sample()
        assert res.found[0]
        assert res.signs[0] == -1  # 11 (inside) is the larger endpoint

    def test_recovered_edge_is_outgoing(self):
        n = 64
        rng = np.random.default_rng(9)
        edges = set()
        while len(edges) < 150:
            u, v = rng.integers(0, n, 2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        edges = sorted(edges)
        s = set(range(n // 2))
        crossing = {(u, v) for u, v in edges if (u in s) != (v in s)}
        for seed in range(5):
            spec = SketchSpec.for_graph(n, seed=100 + seed)
            b = sketch_of_vertex_set(n, edges, s, spec)
            res = b.sample()
            assert res.found[0]
            lo, hi = decode_slot(n, np.array([res.slots[0]]))
            assert (int(lo[0]), int(hi[0])) in crossing

    def test_success_rate_high(self):
        # Lemma 2 is a w.h.p. statement; with 6 repetitions the empirical
        # success rate over distinct seeds must be near-perfect.
        n = 64
        rng = np.random.default_rng(10)
        edges = set()
        while len(edges) < 200:
            u, v = rng.integers(0, n, 2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        s = set(range(20))
        ok = 0
        trials = 40
        for seed in range(trials):
            spec = SketchSpec.for_graph(n, seed=1000 + seed)
            ok += int(sketch_of_vertex_set(n, sorted(edges), s, spec).sample().found[0])
        assert ok >= trials - 2


class TestLinearity:
    def test_add_equals_union_of_disjoint_sets(self):
        n = 20
        edges = [(0, 10), (1, 11), (2, 12), (0, 1), (10, 11)]
        spec = SketchSpec.for_graph(n, seed=11)
        owners, others = [], []
        for u, v in edges:
            owners += [u, v]
            others += [v, u]
        owners = np.array(owners)
        others = np.array(others)
        slots, signs = incident_slots_and_signs(n, owners, others)
        ctx = SketchContext(spec, slots, signs)
        # Three groups: A = {0,1,2}, B = {10,11,12}, rest.
        group = np.where(
            np.isin(owners, [0, 1, 2]), 0, np.where(np.isin(owners, [10, 11, 12]), 1, 2)
        )
        b3 = ctx.group_sums(group, 3)
        merged = b3.aggregate(np.array([0, 0, 1]), 2)
        # A u B covers all edges' endpoints -> the union sketch is zero.
        assert not merged.nonzero_mask()[0]
        # Direct single-group construction must agree entrywise.
        direct = ctx.group_sums(np.where(group == 2, 1, 0), 2)
        assert np.array_equal(direct.counts[0], merged.counts[0])
        assert np.array_equal(direct.sums[0], merged.sums[0])
        assert np.array_equal(direct.fps[0], merged.fps[0])

    def test_bundle_add(self):
        n = 12
        spec = SketchSpec.for_graph(n, seed=12)
        b1 = sketch_of_vertex_set(n, [(0, 5)], {0}, spec)
        b2 = sketch_of_vertex_set(n, [(1, 6)], {1}, spec)
        s = b1.add(b2)
        assert np.array_equal(s.counts, b1.counts + b2.counts)

    def test_add_rejects_spec_mismatch(self):
        n = 12
        b1 = sketch_of_vertex_set(n, [(0, 5)], {0}, SketchSpec.for_graph(n, seed=1))
        b2 = sketch_of_vertex_set(n, [(0, 5)], {0}, SketchSpec.for_graph(n, seed=2))
        with pytest.raises(ValueError):
            b1.add(b2)

    def test_aggregate_rejects_bad_map(self):
        n = 12
        b = sketch_of_vertex_set(n, [(0, 5)], {0}, SketchSpec.for_graph(n, seed=1))
        with pytest.raises(ValueError):
            b.aggregate(np.array([0]), 1)  # needs 2 entries


class TestMaskRestriction:
    def test_mask_drops_incidences(self):
        # Used by MST elimination: masked slots vanish from the sketch.
        n = 16
        spec = SketchSpec.for_graph(n, seed=13)
        owners = np.array([0, 7, 0, 9])
        others = np.array([7, 0, 9, 0])
        slots, signs = incident_slots_and_signs(n, owners, others)
        ctx = SketchContext(spec, slots, signs)
        group = np.zeros(4, dtype=np.int64)
        group[np.isin(owners, [7, 9])] = 1
        # Mask out the (0,9) edge entirely.
        mask = ~np.isin(np.arange(4), [2, 3])
        b = ctx.group_sums(group, 2, mask=mask)
        res = b.sample()
        assert res.found[0]
        lo, hi = decode_slot(n, np.array([res.slots[0]]))
        assert (int(lo[0]), int(hi[0])) == (0, 7)


@pytest.mark.parametrize("family", ["polynomial", "prf"])
def test_hash_families_both_recover(family):
    n = 32
    spec = SketchSpec.for_graph(n, seed=21, hash_family=family)
    owners = np.array([2, 30])
    others = np.array([30, 2])
    slots, signs = incident_slots_and_signs(n, owners, others)
    ctx = SketchContext(spec, slots, signs)
    b = ctx.group_sums(np.array([0, 1]), 2)
    res = b.sample()
    assert res.found.all()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_edges=st.integers(min_value=1, max_value=60),
    split=st.integers(min_value=1, max_value=31),
)
@settings(max_examples=25, deadline=None)
def test_property_recovery_is_always_a_true_crossing_edge(seed, n_edges, split):
    """Whatever the sketch recovers is a genuine cut edge with correct side info.

    (Recovery may fail — that's the w.h.p. part — but it must never
    fabricate an edge: the fingerprint check filters collisions.)
    """
    n = 32
    rng = np.random.default_rng(seed)
    edges = set()
    for _ in range(n_edges):
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    if not edges:
        return
    s = set(range(split))
    crossing = {(u, v) for u, v in edges if (u in s) != (v in s)}
    spec = SketchSpec.for_graph(n, seed=seed ^ 0xABCD)
    b = sketch_of_vertex_set(n, sorted(edges), s, spec)
    res = b.sample()
    assert bool(b.nonzero_mask()[0]) == bool(crossing)
    if res.found[0]:
        lo, hi = decode_slot(n, np.array([res.slots[0]]))
        e = (int(lo[0]), int(hi[0]))
        assert e in crossing
        inside = e[0] if res.signs[0] == 1 else e[1]
        assert inside in s
